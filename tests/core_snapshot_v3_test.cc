// Snapshot v3 (delta frame) tests: the generation/resync protocol, a
// pinned golden delta frame (layout in DESIGN.md, "Wire format"), a
// differential suite proving that a delta-patched sink view re-encodes to
// the exact bytes of a fresh full v2 frame for every engine kind x
// workload x r, and exhaustive robustness coverage — truncation at every
// offset, per-field corruption, stale/overlapping/mismatched frames — all
// reporting Status, never UB (the suite runs under ASan+UBSan in CI).

#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/snapshot.h"
#include "core/static_adaptive.h"
#include "queries/certified.h"
#include "stream/generators.h"

namespace streamhull {
namespace {

EngineOptions Opts(uint32_t r) {
  EngineOptions o;
  o.hull.r = r;
  return o;
}

std::unique_ptr<PointGenerator> MakeWorkload(int kind) {
  switch (kind) {
    case 0: return std::make_unique<DiskGenerator>(71);
    case 1: return std::make_unique<SquareGenerator>(72, 0.21);
    case 2: return std::make_unique<EllipseGenerator>(73, 16.0, 0.13);
    case 3: return std::make_unique<CircleGenerator>(74, 97);
    case 4: return std::make_unique<ClusterGenerator>(75, 5);
    case 5: return std::make_unique<DriftWalkGenerator>(76);
    default: return std::make_unique<SpiralGenerator>(77, 1e-3);
  }
}

// A producer/sink pair running the delta protocol end to end: the
// producer encodes (delta when possible, full resync otherwise), the sink
// applies/decodes, and the caller asserts sink state against the engine.
struct DeltaPipeline {
  std::unique_ptr<HullEngine> engine;
  DecodedSummaryView view;
  bool synced = false;
  uint64_t full_frames = 0;
  uint64_t delta_frames = 0;
  uint64_t delta_bytes = 0;
  uint64_t full_bytes = 0;

  // One poll cycle: ship whatever the producer can, return the frame size.
  size_t ShipUpdate() {
    std::string frame;
    const uint64_t sink_generation = synced ? view.num_points : 0;
    if (engine->EncodeSummaryDelta(sink_generation, &frame).ok()) {
      EXPECT_EQ(SnapshotVersion(frame), 3u);
      const Status st = ApplySummaryDelta(frame, &view);
      EXPECT_TRUE(st.ok()) << st.ToString();
      ++delta_frames;
      delta_bytes += frame.size();
    } else {
      frame = engine->EncodeView();
      EXPECT_EQ(SnapshotVersion(frame), 2u);
      const Status st = DecodeSummaryView(frame, &view);
      EXPECT_TRUE(st.ok()) << st.ToString();
      synced = true;
      ++full_frames;
      full_bytes += frame.size();
    }
    return frame.size();
  }
};

// ---------------------------------------------------------------------------
// Protocol basics
// ---------------------------------------------------------------------------

TEST(SnapshotDeltaProtocolTest, DeltaBeforeAnyFullFrameFailsPrecondition) {
  auto engine = MakeEngine(EngineKind::kAdaptive, Opts(8));
  engine->Insert({1.0, 2.0});
  std::string frame;
  const Status st = engine->EncodeSummaryDelta(1, &frame);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st.ToString();
}

TEST(SnapshotDeltaProtocolTest, EmptyEngineCannotEstablishBaseline) {
  auto engine = MakeEngine(EngineKind::kAdaptive, Opts(8));
  (void)engine->EncodeView();  // Empty: decoders reject it, no baseline.
  engine->Insert({1.0, 2.0});
  std::string frame;
  EXPECT_EQ(engine->EncodeSummaryDelta(0, &frame).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotDeltaProtocolTest, WrongBaseGenerationFailsPrecondition) {
  auto engine = MakeEngine(EngineKind::kAdaptive, Opts(8));
  engine->Insert({1.0, 2.0});
  (void)engine->EncodeView();  // Baseline at generation 1.
  engine->Insert({-3.0, 0.5});
  std::string frame;
  EXPECT_EQ(engine->EncodeSummaryDelta(7, &frame).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(engine->EncodeSummaryDelta(1, &frame).ok());
}

TEST(SnapshotDeltaProtocolTest, QuiescentDeltaIsHeaderOnlyAndAppliesCleanly) {
  auto engine = MakeEngine(EngineKind::kAdaptive, Opts(8));
  DiskGenerator gen(7);
  engine->InsertBatch(gen.Take(500));
  const std::string full = engine->EncodeView();
  DecodedSummaryView view;
  ASSERT_TRUE(DecodeSummaryView(full, &view).ok());

  std::string frame;
  ASSERT_TRUE(engine->EncodeSummaryDelta(view.num_points, &frame).ok());
  EXPECT_EQ(frame.size(), 64u);  // No upserts, no retires: header only.
  std::vector<HullSample> upserted;
  ASSERT_TRUE(ApplySummaryDelta(frame, &view, &upserted).ok());
  EXPECT_TRUE(upserted.empty());
  EXPECT_EQ(EncodeSummaryView(view), full);
}

TEST(SnapshotDeltaProtocolTest, ReplayedDeltaFailsPrecondition) {
  auto engine = MakeEngine(EngineKind::kAdaptive, Opts(8));
  DiskGenerator gen(8);
  engine->InsertBatch(gen.Take(100));
  DecodedSummaryView view;
  ASSERT_TRUE(DecodeSummaryView(engine->EncodeView(), &view).ok());
  engine->InsertBatch(gen.Take(100));
  std::string delta;
  ASSERT_TRUE(engine->EncodeSummaryDelta(100, &delta).ok());
  ASSERT_TRUE(ApplySummaryDelta(delta, &view).ok());
  EXPECT_EQ(view.num_points, 200u);
  // The same frame again no longer chains: its base is behind the view.
  const Status st = ApplySummaryDelta(delta, &view);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st.ToString();
  EXPECT_EQ(view.num_points, 200u);  // Untouched.
}

TEST(SnapshotDeltaProtocolTest, DroppedFrameForcesResyncAndResyncRecovers) {
  auto engine = MakeEngine(EngineKind::kAdaptive, Opts(8));
  DiskGenerator gen(9);
  engine->InsertBatch(gen.Take(100));
  DecodedSummaryView view;
  ASSERT_TRUE(DecodeSummaryView(engine->EncodeView(), &view).ok());

  // This frame is "lost in transit": the producer's baseline advances to
  // generation 200, the sink stays at 100.
  engine->InsertBatch(gen.Take(100));
  std::string lost;
  ASSERT_TRUE(engine->EncodeSummaryDelta(100, &lost).ok());

  engine->InsertBatch(gen.Take(100));
  std::string next;
  ASSERT_TRUE(engine->EncodeSummaryDelta(200, &next).ok());
  const Status st = ApplySummaryDelta(next, &view);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st.ToString();
  EXPECT_EQ(view.num_points, 100u);  // Untouched by the failed apply.

  // The resync path: a fresh full frame, after which deltas chain again.
  ASSERT_TRUE(DecodeSummaryView(engine->EncodeView(), &view).ok());
  EXPECT_EQ(view.num_points, 300u);
  engine->InsertBatch(gen.Take(50));
  std::string resumed;
  ASSERT_TRUE(engine->EncodeSummaryDelta(300, &resumed).ok());
  ASSERT_TRUE(ApplySummaryDelta(resumed, &view).ok());
  EXPECT_EQ(EncodeSummaryView(view), EncodeSummaryView(*engine));
}

// ---------------------------------------------------------------------------
// Golden bytes: r=8 adaptive, one point shipped full, a second shipped as
// a delta. Pinned against the byte layout in DESIGN.md; if this breaks,
// the wire format changed and the version must be bumped.
// ---------------------------------------------------------------------------

TEST(SnapshotDeltaGoldenTest, PinnedDeltaFrame) {
  AdaptiveHullOptions options;
  options.r = 8;
  AdaptiveHull hull(options);
  hull.Insert({1.5, -2.25});
  (void)hull.EncodeView();  // Baseline at generation 1.
  hull.Insert({3.0, 1.0});
  std::string delta;
  ASSERT_TRUE(hull.EncodeSummaryDelta(1, &delta).ok());

  // 64-byte header + 10 upserted samples * 36 bytes (the new point wins 6
  // of the 8 uniform directions and triggers 4 refinements) + 0 retires =
  // 424 bytes.
  ASSERT_EQ(delta.size(), 424u);
  uint32_t u32 = 0;
  std::memcpy(&u32, delta.data() + 0, 4);
  EXPECT_EQ(u32, 0x53484c33u);  // "SHL3".
  std::memcpy(&u32, delta.data() + 4, 4);
  EXPECT_EQ(u32, 3u);  // Version.
  std::memcpy(&u32, delta.data() + 8, 4);
  EXPECT_EQ(u32, 1u);  // Kind: adaptive.
  std::memcpy(&u32, delta.data() + 12, 4);
  EXPECT_EQ(u32, 8u);  // r.
  std::memcpy(&u32, delta.data() + 16, 4);
  EXPECT_EQ(u32, 10u);  // Upserts.
  std::memcpy(&u32, delta.data() + 20, 4);
  EXPECT_EQ(u32, 0u);  // Retires.
  uint64_t u64 = 0;
  std::memcpy(&u64, delta.data() + 32, 8);
  EXPECT_EQ(u64, 1u);  // Base generation.
  std::memcpy(&u64, delta.data() + 40, 8);
  EXPECT_EQ(u64, 2u);  // New generation.

  // The patched view must be what a full re-decode produces.
  AdaptiveHull replay(options);
  replay.Insert({1.5, -2.25});
  DecodedSummaryView view;
  ASSERT_TRUE(DecodeSummaryView(replay.EncodeView(), &view).ok());
  ASSERT_TRUE(ApplySummaryDelta(delta, &view).ok());
  EXPECT_EQ(EncodeSummaryView(view), EncodeSummaryView(hull));
}

// ---------------------------------------------------------------------------
// Differential suite: the delta-patched view re-encodes to the exact
// bytes of the producer's full frame, for every kind x workload x r,
// through many update cycles (including forced mid-stream resyncs).
// ---------------------------------------------------------------------------

class SnapshotDeltaDifferentialTest
    : public ::testing::TestWithParam<std::tuple<EngineKind, int, uint32_t>> {
};

TEST_P(SnapshotDeltaDifferentialTest, PatchedViewMatchesFullReDecode) {
  const auto [kind, workload, r] = GetParam();
  DeltaPipeline pipe;
  pipe.engine = MakeEngine(kind, Opts(r));
  auto gen = MakeWorkload(workload);
  const size_t kUpdates = 24;
  const size_t kChunk = 250;
  for (size_t u = 0; u < kUpdates; ++u) {
    pipe.engine->InsertBatch(gen->Take(kChunk));
    if (u == kUpdates / 2) pipe.synced = false;  // Forced resync mid-run.
    pipe.ShipUpdate();
    // Byte-identical: the patched view re-encodes to exactly the full v2
    // frame the producer would send now (EncodeSummaryView on a const
    // engine does not disturb the delta baseline).
    ASSERT_EQ(EncodeSummaryView(pipe.view),
              EncodeSummaryView(*pipe.engine))
        << "update " << u << " kind " << EngineKindName(kind) << " workload "
        << workload << " r " << r;
    // And the certified sandwich it serves is the producer's.
    const SummaryView sink = pipe.view.View();
    const SummaryView truth(pipe.engine->Polygon(),
                            pipe.engine->OuterPolygon());
    EXPECT_EQ(CertifiedDiameter(sink).value.lo,
              CertifiedDiameter(truth).value.lo);
    EXPECT_EQ(CertifiedDiameter(sink).value.hi,
              CertifiedDiameter(truth).value.hi);
  }
  // Steady state must actually run on deltas (one resync was forced, plus
  // the initial full frame).
  EXPECT_EQ(pipe.full_frames, 2u);
  EXPECT_EQ(pipe.delta_frames, kUpdates - 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesWorkloadsRs, SnapshotDeltaDifferentialTest,
    ::testing::Combine(::testing::ValuesIn(AllEngineKinds().begin(),
                                           AllEngineKinds().end()),
                       ::testing::Values(0, 1, 2, 3, 4, 5, 6),
                       ::testing::Values(8u, 32u, 128u)));

// Deltas must also beat full frames where it matters: a drifting summary
// re-ships a small fraction of its samples. (The CI-gated 20k-point, r=64
// measurement lives in bench_snapshot_delta; this is the loose
// correctness-of-purpose floor.)
TEST(SnapshotDeltaDifferentialTest, DeltasShipFarFewerBytesOnDrift) {
  DeltaPipeline pipe;
  pipe.engine = MakeEngine(EngineKind::kAdaptive, Opts(64));
  DriftWalkGenerator gen(29);
  uint64_t hypothetical_full_bytes = 0;
  for (size_t u = 0; u < 100; ++u) {
    pipe.engine->InsertBatch(gen.Take(200));
    pipe.ShipUpdate();
    hypothetical_full_bytes += EncodeSummaryView(*pipe.engine).size();
  }
  ASSERT_GE(pipe.delta_frames, 99u);
  EXPECT_LT(pipe.delta_bytes + pipe.full_bytes,
            hypothetical_full_bytes / 2);
}

// ---------------------------------------------------------------------------
// Robustness: malformed frames are rejected with a Status and an
// untouched view, at every truncation offset and for every field.
// ---------------------------------------------------------------------------

class SnapshotDeltaRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine = MakeEngine(EngineKind::kAdaptive, Opts(8));
    DiskGenerator gen(31);
    engine->InsertBatch(gen.Take(200));
    ASSERT_TRUE(DecodeSummaryView(engine->EncodeView(), &view_).ok());
    engine->InsertBatch(gen.Take(200));
    ASSERT_TRUE(engine->EncodeSummaryDelta(200, &delta_).ok());
    ASSERT_GT(delta_.size(), 64u);  // Carries at least one record.
    baseline_ = EncodeSummaryView(view_);
  }

  // The view must be byte-identical to its pre-attack state.
  void ExpectViewUntouched() {
    EXPECT_EQ(EncodeSummaryView(view_), baseline_);
  }

  DecodedSummaryView view_;
  std::string delta_;
  std::string baseline_;
};

TEST_F(SnapshotDeltaRobustnessTest, EveryTruncationRejected) {
  for (size_t len = 0; len < delta_.size(); ++len) {
    DecodedSummaryView scratch = view_;
    const Status st =
        ApplySummaryDelta(std::string_view(delta_.data(), len), &scratch);
    EXPECT_FALSE(st.ok()) << "truncation at " << len;
    EXPECT_EQ(EncodeSummaryView(scratch), baseline_);
  }
}

TEST_F(SnapshotDeltaRobustnessTest, TrailingBytesRejected) {
  std::string padded = delta_ + std::string(1, '\0');
  EXPECT_FALSE(ApplySummaryDelta(padded, &view_).ok());
  ExpectViewUntouched();
}

TEST_F(SnapshotDeltaRobustnessTest, HeaderFieldCorruptionRejected) {
  // Flipping the low byte of each u32 header field must be rejected:
  // magic, version, kind, r, upsert count, retire count, flags, reserved.
  for (size_t offset : {0u, 4u, 8u, 12u, 16u, 20u, 24u, 28u}) {
    std::string bad = delta_;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x40);
    EXPECT_FALSE(ApplySummaryDelta(bad, &view_).ok()) << "offset " << offset;
    ExpectViewUntouched();
  }
}

TEST_F(SnapshotDeltaRobustnessTest, GenerationCorruptionRejected) {
  std::string bad = delta_;
  bad[32] = static_cast<char>(bad[32] ^ 0x01);  // Base generation.
  EXPECT_FALSE(ApplySummaryDelta(bad, &view_).ok());
  ExpectViewUntouched();
  bad = delta_;
  // Stream length below the base generation ("regressed").
  std::memset(bad.data() + 40, 0, 8);
  bad[40] = 1;
  EXPECT_FALSE(ApplySummaryDelta(bad, &view_).ok());
  ExpectViewUntouched();
}

TEST_F(SnapshotDeltaRobustnessTest, NonFiniteMetadataRejected) {
  for (size_t offset : {48u, 56u}) {  // Perimeter, error bound.
    std::string bad = delta_;
    // 0x7ff0000000000000: +inf.
    const unsigned char inf[8] = {0, 0, 0, 0, 0, 0, 0xf0, 0x7f};
    std::memcpy(bad.data() + offset, inf, 8);
    EXPECT_FALSE(ApplySummaryDelta(bad, &view_).ok()) << "offset " << offset;
    ExpectViewUntouched();
  }
}

TEST_F(SnapshotDeltaRobustnessTest, KindAndRMismatchRejected) {
  // A frame from a different engine kind / different r must not patch
  // this view even when sizes and generations line up.
  auto other = MakeEngine(EngineKind::kUniform, Opts(8));
  DiskGenerator gen(31);
  other->InsertBatch(gen.Take(200));
  (void)other->EncodeView();
  other->InsertBatch(gen.Take(200));
  std::string delta;
  ASSERT_TRUE(other->EncodeSummaryDelta(200, &delta).ok());
  const Status st = ApplySummaryDelta(delta, &view_);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  ExpectViewUntouched();

  auto wide = MakeEngine(EngineKind::kAdaptive, Opts(16));
  DiskGenerator gen2(31);
  wide->InsertBatch(gen2.Take(200));
  (void)wide->EncodeView();
  wide->InsertBatch(gen2.Take(200));
  ASSERT_TRUE(wide->EncodeSummaryDelta(200, &delta).ok());
  EXPECT_EQ(ApplySummaryDelta(delta, &view_).code(),
            StatusCode::kInvalidArgument);
  ExpectViewUntouched();
}

// Hand-crafted frames for attacks an honest producer cannot emit.
class DeltaFrameBuilder {
 public:
  DeltaFrameBuilder& Header(uint32_t kind, uint32_t r, uint32_t upserts,
                            uint32_t retires, uint64_t base_points,
                            uint64_t num_points) {
    bytes_.clear();
    U32(0x53484c33);
    U32(3);
    U32(kind);
    U32(r);
    U32(upserts);
    U32(retires);
    U32(0);
    U32(0);
    U64(base_points);
    U64(num_points);
    F64(0.0);  // Perimeter.
    F64(0.0);  // Error bound.
    return *this;
  }
  DeltaFrameBuilder& Upsert(uint64_t num, uint32_t level, double x, double y,
                            double slack) {
    U64(num);
    U32(level);
    F64(x);
    F64(y);
    F64(slack);
    return *this;
  }
  DeltaFrameBuilder& Retire(uint64_t num, uint32_t level) {
    U64(num);
    U32(level);
    return *this;
  }
  const std::string& bytes() const { return bytes_; }

 private:
  void U32(uint32_t v) {
    bytes_.append(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void U64(uint64_t v) {
    bytes_.append(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void F64(double v) {
    bytes_.append(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  std::string bytes_;
};

class SnapshotDeltaCraftedFrameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A uniform r=8 view: 8 level-0 samples, directions 0..7, generation
    // 100 — easy to aim crafted records at.
    auto engine = MakeEngine(EngineKind::kUniform, Opts(8));
    DiskGenerator gen(33);
    engine->InsertBatch(gen.Take(100));
    ASSERT_TRUE(DecodeSummaryView(engine->EncodeView(), &view_).ok());
    ASSERT_EQ(view_.samples.size(), 8u);
    baseline_ = EncodeSummaryView(view_);
  }

  void ExpectRejected(const std::string& frame, StatusCode code) {
    const Status st = ApplySummaryDelta(frame, &view_);
    EXPECT_EQ(st.code(), code) << st.ToString();
    EXPECT_EQ(EncodeSummaryView(view_), baseline_);
  }

  DecodedSummaryView view_;
  std::string baseline_;
};

TEST_F(SnapshotDeltaCraftedFrameTest, RetireOfUnknownDirectionRejected) {
  DeltaFrameBuilder b;
  b.Header(/*kind=*/0, /*r=*/8, /*upserts=*/0, /*retires=*/1,
           /*base_points=*/100, /*num_points=*/101)
      .Retire(/*num=*/1, /*level=*/1);  // Refined direction: not in view.
  ExpectRejected(b.bytes(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotDeltaCraftedFrameTest, UpsertAndRetireOfSameDirectionRejected) {
  DeltaFrameBuilder b;
  b.Header(0, 8, /*upserts=*/1, /*retires=*/1, 100, 101)
      .Upsert(/*num=*/2, /*level=*/0, 1.0, 2.0, 0.0)
      .Retire(/*num=*/2, /*level=*/0);
  ExpectRejected(b.bytes(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotDeltaCraftedFrameTest, RetiringEveryDirectionRejected) {
  DeltaFrameBuilder b;
  b.Header(0, 8, 0, /*retires=*/8, 100, 101);
  for (uint64_t j = 0; j < 8; ++j) b.Retire(j, 0);
  ExpectRejected(b.bytes(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotDeltaCraftedFrameTest, NonAscendingRecordsRejected) {
  DeltaFrameBuilder b;
  b.Header(0, 8, /*upserts=*/2, 0, 100, 101)
      .Upsert(3, 0, 1.0, 2.0, 0.0)
      .Upsert(2, 0, 1.0, 2.0, 0.0);
  ExpectRejected(b.bytes(), StatusCode::kInvalidArgument);
  b.Header(0, 8, 0, /*retires=*/2, 100, 101).Retire(3, 0).Retire(2, 0);
  ExpectRejected(b.bytes(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotDeltaCraftedFrameTest, NonCanonicalDirectionsRejected) {
  DeltaFrameBuilder b;
  // level > 0 with an even num is non-canonical; num beyond r << level is
  // out of range; level 41 exceeds kMaxLevel.
  b.Header(0, 8, /*upserts=*/1, 0, 100, 101).Upsert(2, 1, 1.0, 2.0, 0.0);
  ExpectRejected(b.bytes(), StatusCode::kInvalidArgument);
  b.Header(0, 8, /*upserts=*/1, 0, 100, 101).Upsert(16, 0, 1.0, 2.0, 0.0);
  ExpectRejected(b.bytes(), StatusCode::kInvalidArgument);
  b.Header(0, 8, 0, /*retires=*/1, 100, 101).Retire(1, 41);
  ExpectRejected(b.bytes(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotDeltaCraftedFrameTest, NegativeOrNonFiniteSlackRejected) {
  DeltaFrameBuilder b;
  b.Header(0, 8, /*upserts=*/1, 0, 100, 101).Upsert(2, 0, 1.0, 2.0, -1.0);
  ExpectRejected(b.bytes(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotDeltaCraftedFrameTest, SampleChangesWithoutProgressRejected) {
  DeltaFrameBuilder b;
  // Same generation on both ends but claiming a sample moved: a state
  // change without stream progress is impossible for an honest producer.
  b.Header(0, 8, /*upserts=*/1, 0, 100, /*num_points=*/100)
      .Upsert(2, 0, 1.0, 2.0, 0.0);
  ExpectRejected(b.bytes(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotDeltaCraftedFrameTest, CountBudgetOverflowRejected) {
  // 4r+4 = 36 for r=8; a crafted count beyond it must be rejected before
  // any allocation sized from it (the exact-size check fires first).
  DeltaFrameBuilder b;
  b.Header(0, 8, /*upserts=*/5000, 0, 100, 101);
  ExpectRejected(b.bytes(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotDeltaCraftedFrameTest, UnknownMagicReportsVersionZero) {
  std::string junk = "XXXXjunkjunkjunk";
  EXPECT_EQ(SnapshotVersion(junk), 0u);
  DeltaFrameBuilder b;
  b.Header(0, 8, 0, 0, 100, 101);
  EXPECT_EQ(SnapshotVersion(b.bytes()), 3u);
}

}  // namespace
}  // namespace streamhull
