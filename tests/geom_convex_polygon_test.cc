// Tests for ConvexPolygon: aggregates, containment, extreme-vertex search,
// tangents, and distance queries, with differential checks against the
// brute-force reference implementations.

#include "geom/convex_polygon.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/convex_hull.h"

namespace streamhull {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

ConvexPolygon UnitSquare() {
  return ConvexPolygon({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
}

TEST(ConvexPolygonTest, PerimeterAndArea) {
  const ConvexPolygon sq = UnitSquare();
  EXPECT_DOUBLE_EQ(sq.Perimeter(), 8.0);
  EXPECT_DOUBLE_EQ(sq.Area(), 4.0);
}

TEST(ConvexPolygonTest, DegenerateAggregates) {
  EXPECT_DOUBLE_EQ(ConvexPolygon().Perimeter(), 0.0);
  EXPECT_DOUBLE_EQ(ConvexPolygon({{1, 1}}).Perimeter(), 0.0);
  // A 2-gon boundary traverses the segment twice.
  EXPECT_DOUBLE_EQ(ConvexPolygon({{0, 0}, {3, 4}}).Perimeter(), 10.0);
  EXPECT_DOUBLE_EQ(ConvexPolygon({{0, 0}, {3, 4}}).Area(), 0.0);
}

TEST(ConvexPolygonTest, VertexCentroid) {
  const Point2 c = UnitSquare().VertexCentroid();
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
}

TEST(ConvexPolygonTest, ContainsBasicCases) {
  const ConvexPolygon sq = UnitSquare();
  EXPECT_TRUE(sq.Contains({1, 1}));
  EXPECT_TRUE(sq.Contains({0, 0}));    // Vertex.
  EXPECT_TRUE(sq.Contains({1, 0}));    // Edge.
  EXPECT_FALSE(sq.Contains({3, 1}));
  EXPECT_FALSE(sq.Contains({-0.001, 1}));
}

TEST(ConvexPolygonTest, ContainsDegenerate) {
  EXPECT_FALSE(ConvexPolygon().Contains({0, 0}));
  EXPECT_TRUE(ConvexPolygon({{1, 1}}).Contains({1, 1}));
  EXPECT_FALSE(ConvexPolygon({{1, 1}}).Contains({1, 2}));
  const ConvexPolygon seg({{0, 0}, {2, 2}});
  EXPECT_TRUE(seg.Contains({1, 1}));
  EXPECT_FALSE(seg.Contains({1, 1.1}));
}

TEST(ConvexPolygonTest, ExtremeVertexAxisDirections) {
  const ConvexPolygon sq = UnitSquare();
  EXPECT_EQ(sq[sq.ExtremeVertex({1, 0})].x, 2.0);
  EXPECT_EQ(sq[sq.ExtremeVertex({-1, 0})].x, 0.0);
  EXPECT_EQ(sq[sq.ExtremeVertex({0, 1})].y, 2.0);
}

TEST(ConvexPolygonTest, SupportAndExtent) {
  const ConvexPolygon sq = UnitSquare();
  EXPECT_DOUBLE_EQ(sq.Support({1, 0}), 2.0);
  EXPECT_DOUBLE_EQ(sq.Extent({1, 0}), 2.0);
  EXPECT_NEAR(sq.Extent(Point2{1, 1}.Normalized()), 2 * std::sqrt(2.0), 1e-12);
}

TEST(ConvexPolygonTest, DistanceOutside) {
  const ConvexPolygon sq = UnitSquare();
  EXPECT_DOUBLE_EQ(sq.DistanceOutside({1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(sq.DistanceOutside({2, 1}), 0.0);   // On boundary.
  EXPECT_DOUBLE_EQ(sq.DistanceOutside({5, 1}), 3.0);   // Beyond right edge.
  EXPECT_DOUBLE_EQ(sq.DistanceOutside({5, 6}), 5.0);   // Beyond corner.
}

TEST(ConvexPolygonTest, TangentsFromExteriorPoint) {
  const ConvexPolygon sq = UnitSquare();
  const auto t = sq.TangentsFrom({1, -3});
  ASSERT_TRUE(t.has_value());
  // From below, the visible chain is the bottom edge: tangents are its ends.
  EXPECT_EQ(sq[t->first], Point2(0, 0));
  EXPECT_EQ(sq[t->second], Point2(2, 0));
  EXPECT_FALSE(sq.TangentsFrom({1, 1}).has_value());
}

class PolygonDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(PolygonDifferentialTest, ContainsMatchesBrute) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 5);
  std::vector<Point2> pts;
  const int n = 20 + static_cast<int>(rng.UniformInt(150));
  for (int i = 0; i < n; ++i) {
    const double a = rng.Uniform(0, kTwoPi);
    const double r = 0.3 + rng.NextDouble();
    pts.push_back({r * std::cos(a), r * std::sin(a)});
  }
  const ConvexPolygon poly(ConvexHullOf(pts));
  for (int t = 0; t < 40; ++t) {
    const Point2 q{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    EXPECT_EQ(poly.Contains(q), poly.ContainsBrute(q))
        << "case " << GetParam() << " q=" << q;
  }
}

TEST_P(PolygonDifferentialTest, ExtremeVertexMatchesBrute) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 11);
  std::vector<Point2> pts;
  const int n = 40 + static_cast<int>(rng.UniformInt(200));
  for (int i = 0; i < n; ++i) {
    const double a = rng.Uniform(0, kTwoPi);
    const double r = 0.3 + rng.NextDouble();
    pts.push_back({r * std::cos(a), r * std::sin(a)});
  }
  const ConvexPolygon poly(ConvexHullOf(pts));
  if (poly.size() < 3) return;
  for (int t = 0; t < 60; ++t) {
    const Point2 dir = UnitVector(rng.Uniform(0, kTwoPi));
    const size_t fast = poly.ExtremeVertex(dir);
    const size_t slow = poly.ExtremeVertexBrute(dir);
    // Indices may differ on (near-)ties; the support values must agree.
    EXPECT_NEAR(Dot(poly[fast], dir), Dot(poly[slow], dir), 1e-9)
        << "case " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Random, PolygonDifferentialTest,
                         ::testing::Range(0, 100));

}  // namespace
}  // namespace streamhull
