// Tests for the deterministic fault-injection framework
// (runtime/failpoint.h): spec parsing (including every malformed shape),
// count / every-Nth / one-shot gating, re-arm semantics, the
// STREAMHULL_FAILPOINTS list format, evaluation/fire accounting, and the
// disarmed fast path staying false under concurrent evaluation.

#include "runtime/failpoint.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace streamhull {
namespace {

// Every test leaves the global registry clean — failpoints are process
// state, and a leaked arming would poison unrelated suites.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().DisarmAll(); }
  void TearDown() override { Failpoints::Instance().DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedNeverFires) {
  FailpointHit hit;
  EXPECT_FALSE(FailpointFires("test.nothing", &hit));
  EXPECT_EQ(Failpoints::Instance().evaluations("test.nothing"), 0u);
}

TEST_F(FailpointTest, ErrorActionFiresEveryEvaluation) {
  ASSERT_TRUE(Failpoints::Instance().Arm("test.a", "error(io)").ok());
  for (int i = 0; i < 5; ++i) {
    FailpointHit hit;
    ASSERT_TRUE(FailpointFires("test.a", &hit));
    EXPECT_EQ(hit.action, FailpointAction::kError);
    EXPECT_EQ(hit.code, StatusCode::kIOError);
    const Status st = hit.ToStatus("test.a");
    EXPECT_EQ(st.code(), StatusCode::kIOError);
    EXPECT_NE(st.message().find("test.a"), std::string::npos);
  }
  EXPECT_EQ(Failpoints::Instance().evaluations("test.a"), 5u);
  EXPECT_EQ(Failpoints::Instance().fires("test.a"), 5u);
}

TEST_F(FailpointTest, EveryStatusCodeParses) {
  const struct {
    const char* name;
    StatusCode code;
  } kCodes[] = {
      {"io", StatusCode::kIOError},
      {"invalid", StatusCode::kInvalidArgument},
      {"oor", StatusCode::kOutOfRange},
      {"precondition", StatusCode::kFailedPrecondition},
      {"internal", StatusCode::kInternal},
      {"resource", StatusCode::kResourceExhausted},
      {"data", StatusCode::kDataLoss},
  };
  for (const auto& c : kCodes) {
    ASSERT_TRUE(Failpoints::Instance()
                    .Arm("test.code", std::string("error(") + c.name + ")")
                    .ok())
        << c.name;
    FailpointHit hit;
    ASSERT_TRUE(FailpointFires("test.code", &hit)) << c.name;
    EXPECT_EQ(hit.code, c.code) << c.name;
  }
}

TEST_F(FailpointTest, OneShotAutoDisarms) {
  ASSERT_TRUE(Failpoints::Instance().Arm("test.once", "1*error(io)").ok());
  FailpointHit hit;
  EXPECT_TRUE(FailpointFires("test.once", &hit));
  EXPECT_FALSE(FailpointFires("test.once", &hit));
  EXPECT_FALSE(FailpointFires("test.once", &hit));
  EXPECT_EQ(Failpoints::Instance().fires("test.once"), 1u);
  // Auto-disarm removed it from the armed surface.
  EXPECT_TRUE(Failpoints::Instance().ArmedNames().empty());
}

TEST_F(FailpointTest, CountLimitsFires) {
  ASSERT_TRUE(Failpoints::Instance().Arm("test.n", "3*error(io)").ok());
  FailpointHit hit;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (FailpointFires("test.n", &hit)) ++fired;
  }
  EXPECT_EQ(fired, 3);
}

TEST_F(FailpointTest, EveryNthFiresOnMultiplesOnly) {
  ASSERT_TRUE(
      Failpoints::Instance().Arm("test.every", "every(3)*error(io)").ok());
  FailpointHit hit;
  std::vector<int> fired_at;
  for (int i = 1; i <= 9; ++i) {
    if (FailpointFires("test.every", &hit)) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{3, 6, 9}));
}

TEST_F(FailpointTest, CountAndEveryCompose) {
  ASSERT_TRUE(
      Failpoints::Instance().Arm("test.ce", "2*every(2)*error(io)").ok());
  FailpointHit hit;
  std::vector<int> fired_at;
  for (int i = 1; i <= 10; ++i) {
    if (FailpointFires("test.ce", &hit)) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{2, 4}));
}

TEST_F(FailpointTest, ShortWriteCarriesByteCount) {
  ASSERT_TRUE(Failpoints::Instance().Arm("test.short", "short(20)").ok());
  FailpointHit hit;
  ASSERT_TRUE(FailpointFires("test.short", &hit));
  EXPECT_EQ(hit.action, FailpointAction::kShortWrite);
  EXPECT_EQ(hit.arg, 20);
}

TEST_F(FailpointTest, EintrAndTriggerActions) {
  ASSERT_TRUE(Failpoints::Instance().Arm("test.eintr", "eintr").ok());
  FailpointHit hit;
  ASSERT_TRUE(FailpointFires("test.eintr", &hit));
  EXPECT_EQ(hit.action, FailpointAction::kEintr);

  ASSERT_TRUE(Failpoints::Instance().Arm("test.trig", "trigger").ok());
  ASSERT_TRUE(FailpointFires("test.trig", &hit));
  EXPECT_EQ(hit.action, FailpointAction::kTrigger);
  EXPECT_EQ(hit.arg, 0);

  ASSERT_TRUE(Failpoints::Instance().Arm("test.trig", "trigger(7)").ok());
  ASSERT_TRUE(FailpointFires("test.trig", &hit));
  EXPECT_EQ(hit.arg, 7);
}

TEST_F(FailpointTest, OffSpecDisarms) {
  ASSERT_TRUE(Failpoints::Instance().Arm("test.off", "error(io)").ok());
  ASSERT_TRUE(Failpoints::Instance().Arm("test.off", "off").ok());
  FailpointHit hit;
  EXPECT_FALSE(FailpointFires("test.off", &hit));
}

TEST_F(FailpointTest, RearmReplacesSpecAndResetsCounts) {
  ASSERT_TRUE(Failpoints::Instance().Arm("test.re", "error(io)").ok());
  FailpointHit hit;
  ASSERT_TRUE(FailpointFires("test.re", &hit));
  ASSERT_TRUE(FailpointFires("test.re", &hit));
  ASSERT_TRUE(Failpoints::Instance().Arm("test.re", "1*short(4)").ok());
  EXPECT_EQ(Failpoints::Instance().evaluations("test.re"), 0u);
  ASSERT_TRUE(FailpointFires("test.re", &hit));
  EXPECT_EQ(hit.action, FailpointAction::kShortWrite);
  EXPECT_FALSE(FailpointFires("test.re", &hit));
}

TEST_F(FailpointTest, MalformedSpecsAreRejectedAtomically) {
  const char* kBad[] = {
      "",           "*",          "error",       "error()",
      "error(bogus)", "short",    "short()",     "short(x)",
      "5",          "every(0)*error(io)", "every()*error(io)",
      "0*error(io)", "1*2*error(io)", "every(2)*every(3)*error(io)",
      "error(io)*error(io)", "eintr*",
  };
  for (const char* spec : kBad) {
    EXPECT_FALSE(Failpoints::Instance().Arm("test.bad", spec).ok())
        << "spec accepted: '" << spec << "'";
  }
  // A rejected re-arm leaves the previous arming untouched.
  ASSERT_TRUE(Failpoints::Instance().Arm("test.keep", "error(io)").ok());
  EXPECT_FALSE(Failpoints::Instance().Arm("test.keep", "error(").ok());
  FailpointHit hit;
  EXPECT_TRUE(FailpointFires("test.keep", &hit));
}

TEST_F(FailpointTest, ArmListParsesSemicolonSeparatedEntries) {
  ASSERT_TRUE(Failpoints::Instance()
                  .ArmList("test.l1=error(io);;test.l2=2*short(8);")
                  .ok());
  const std::vector<std::string> names = Failpoints::Instance().ArmedNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "test.l1");
  EXPECT_EQ(names[1], "test.l2");
  FailpointHit hit;
  EXPECT_TRUE(FailpointFires("test.l2", &hit));
  EXPECT_EQ(hit.arg, 8);
}

TEST_F(FailpointTest, ArmListStopsAtFirstMalformedEntry) {
  EXPECT_FALSE(Failpoints::Instance()
                   .ArmList("test.good=error(io);broken;test.after=eintr")
                   .ok());
  FailpointHit hit;
  EXPECT_TRUE(FailpointFires("test.good", &hit));   // Armed before the stop.
  EXPECT_FALSE(FailpointFires("test.after", &hit)); // Never reached.
}

TEST_F(FailpointTest, ArmFromEnvReadsTheVariable) {
  ASSERT_EQ(::setenv("STREAMHULL_FAILPOINTS", "test.env=1*error(data)", 1),
            0);
  ASSERT_TRUE(Failpoints::Instance().ArmFromEnv().ok());
  ::unsetenv("STREAMHULL_FAILPOINTS");
  FailpointHit hit;
  ASSERT_TRUE(FailpointFires("test.env", &hit));
  EXPECT_EQ(hit.code, StatusCode::kDataLoss);
}

TEST_F(FailpointTest, DisarmAllClearsEverything) {
  ASSERT_TRUE(Failpoints::Instance().Arm("test.x", "error(io)").ok());
  ASSERT_TRUE(Failpoints::Instance().Arm("test.y", "eintr").ok());
  Failpoints::Instance().DisarmAll();
  EXPECT_TRUE(Failpoints::Instance().ArmedNames().empty());
  FailpointHit hit;
  EXPECT_FALSE(FailpointFires("test.x", &hit));
  EXPECT_FALSE(FailpointFires("test.y", &hit));
}

// Concurrency smoke: one thread arms/disarms while others evaluate; ASan/
// TSan runs catch races, and a disarmed name must never report a fire.
TEST_F(FailpointTest, ConcurrentEvaluationIsSafe) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> unexpected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      FailpointHit hit;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)FailpointFires("test.conc", &hit);
        if (FailpointFires("test.never", &hit)) {
          unexpected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(Failpoints::Instance().Arm("test.conc", "error(io)").ok());
    Failpoints::Instance().Disarm("test.conc");
  }
  stop.store(true);
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(unexpected.load(), 0u);
}

}  // namespace
}  // namespace streamhull
