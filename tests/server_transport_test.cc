// Tests for the byte transports (server/transport.h). The pipe pair is
// covered end-to-end by the server suites; this file pins the transport
// contracts themselves — above all that UnixSocketTransport::Send fails
// with IOError within a bounded time when the peer stops reading (a full
// kernel buffer must cost one session, never wedge the sending thread in
// an unbounded wait).

#include "server/transport.h"

#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include <sys/socket.h>

namespace streamhull {
namespace {

TEST(PipeTransportTest, OutboxBytesTracksUnreceivedSends) {
  auto [a, b] = PipeTransport::CreatePair();
  EXPECT_EQ(a->outbox_bytes(), 0u);
  ASSERT_TRUE(a->Send("hello").ok());
  EXPECT_EQ(a->outbox_bytes(), 5u);
  ASSERT_TRUE(a->Send("!").ok());
  EXPECT_EQ(a->outbox_bytes(), 6u);
  EXPECT_EQ(b->outbox_bytes(), 0u);  // Per direction.
  std::string got;
  ASSERT_TRUE(b->Recv(&got).ok());
  EXPECT_EQ(got, "hello!");
  EXPECT_EQ(a->outbox_bytes(), 0u);
}

TEST(UnixSocketTransportTest, SendFailsBoundedWhenPeerStopsReading) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  UnixSocketTransport writer(fds[0]);
  UnixSocketTransport reader(fds[1]);  // Never reads: a stuck client.
  writer.set_send_unwritable_timeout_ms(200);

  const std::string chunk(64 * 1024, 'x');
  Status st = Status::OK();
  const auto start = std::chrono::steady_clock::now();
  // Fill the kernel buffer until the bounded wait trips. Before the
  // bound existed this loop spun forever at 100% CPU.
  for (int i = 0; i < 1024 && st.ok(); ++i) st = writer.Send(chunk);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("unwritable"), std::string::npos)
      << st.ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

TEST(UnixSocketTransportTest, SendRecvRoundTripAcrossSocketPair) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  UnixSocketTransport a(fds[0]);
  UnixSocketTransport b(fds[1]);
  ASSERT_TRUE(a.Send("ping").ok());
  std::string got;
  ASSERT_TRUE(b.Recv(&got).ok());
  EXPECT_EQ(got, "ping");
  a.Close();
  got.clear();
  // Drained and closed: Recv reports the disconnect.
  EXPECT_EQ(b.Recv(&got).code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace streamhull
