// Tests for the rank-indexable skip list, including randomized differential
// testing against std::map plus rank cross-checks against a sorted vector.

#include "container/indexable_skiplist.h"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace streamhull {
namespace {

TEST(SkipListTest, EmptyBasics) {
  IndexableSkipList<int, std::string> sl;
  EXPECT_EQ(sl.size(), 0u);
  EXPECT_TRUE(sl.empty());
  EXPECT_EQ(sl.First(), nullptr);
  EXPECT_EQ(sl.Last(), nullptr);
  EXPECT_EQ(sl.Find(1), nullptr);
  EXPECT_EQ(sl.FindLessEqual(5), nullptr);
  EXPECT_EQ(sl.FindGreaterEqual(5), nullptr);
  EXPECT_TRUE(sl.CheckIntegrity());
}

TEST(SkipListTest, InsertFindErase) {
  IndexableSkipList<int, std::string> sl;
  sl.Insert(5, "five");
  sl.Insert(1, "one");
  sl.Insert(9, "nine");
  EXPECT_EQ(sl.size(), 3u);
  ASSERT_NE(sl.Find(5), nullptr);
  EXPECT_EQ(sl.Find(5)->value, "five");
  EXPECT_EQ(sl.Find(7), nullptr);
  EXPECT_TRUE(sl.Erase(5));
  EXPECT_FALSE(sl.Erase(5));
  EXPECT_EQ(sl.size(), 2u);
  EXPECT_TRUE(sl.CheckIntegrity());
}

TEST(SkipListTest, InsertOverwritesExistingKey) {
  IndexableSkipList<int, int> sl;
  sl.Insert(3, 30);
  sl.Insert(3, 31);
  EXPECT_EQ(sl.size(), 1u);
  EXPECT_EQ(sl.Find(3)->value, 31);
}

TEST(SkipListTest, OrderedIteration) {
  IndexableSkipList<int, int> sl;
  for (int k : {7, 1, 9, 3, 5}) sl.Insert(k, k * 10);
  std::vector<int> keys;
  for (auto* n = sl.First(); n != nullptr; n = sl.Next(n)) keys.push_back(n->key);
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 5, 7, 9}));
  EXPECT_EQ(sl.Last()->key, 9);
}

TEST(SkipListTest, RankAccess) {
  IndexableSkipList<int, int> sl;
  for (int k : {20, 10, 40, 30}) sl.Insert(k, 0);
  EXPECT_EQ(sl.AtRank(0)->key, 10);
  EXPECT_EQ(sl.AtRank(1)->key, 20);
  EXPECT_EQ(sl.AtRank(3)->key, 40);
  EXPECT_EQ(sl.RankOf(10), 0u);
  EXPECT_EQ(sl.RankOf(40), 3u);
}

TEST(SkipListTest, BoundQueries) {
  IndexableSkipList<int, int> sl;
  for (int k : {10, 20, 30}) sl.Insert(k, 0);
  EXPECT_EQ(sl.FindLessEqual(25)->key, 20);
  EXPECT_EQ(sl.FindLessEqual(20)->key, 20);
  EXPECT_EQ(sl.FindLessEqual(5), nullptr);
  EXPECT_EQ(sl.FindGreaterEqual(25)->key, 30);
  EXPECT_EQ(sl.FindGreaterEqual(30)->key, 30);
  EXPECT_EQ(sl.FindGreaterEqual(31), nullptr);
}

TEST(SkipListTest, Clear) {
  IndexableSkipList<int, int> sl;
  for (int i = 0; i < 100; ++i) sl.Insert(i, i);
  sl.Clear();
  EXPECT_EQ(sl.size(), 0u);
  EXPECT_TRUE(sl.CheckIntegrity());
  sl.Insert(1, 1);
  EXPECT_EQ(sl.size(), 1u);
}

TEST(SkipListTest, DeterministicStructure) {
  // Same seed + same operations -> identical iteration and ranks.
  IndexableSkipList<int, int> a(123), b(123);
  for (int i = 0; i < 500; ++i) {
    a.Insert(i * 7 % 501, i);
    b.Insert(i * 7 % 501, i);
  }
  for (size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a.AtRank(r)->key, b.AtRank(r)->key);
  }
}

class SkipListFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SkipListFuzzTest, MatchesStdMapUnderRandomOps) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6364136223846793005ULL + 42);
  IndexableSkipList<int, int> sl(GetParam());
  std::map<int, int> ref;
  for (int step = 0; step < 2000; ++step) {
    const int key = static_cast<int>(rng.UniformInt(300));
    const int op = static_cast<int>(rng.UniformInt(4));
    if (op <= 1) {
      sl.Insert(key, step);
      ref[key] = step;
    } else if (op == 2) {
      EXPECT_EQ(sl.Erase(key), ref.erase(key) > 0);
    } else {
      auto* n = sl.Find(key);
      auto it = ref.find(key);
      ASSERT_EQ(n != nullptr, it != ref.end());
      if (n != nullptr) {
        EXPECT_EQ(n->value, it->second);
      }
    }
    ASSERT_EQ(sl.size(), ref.size());
  }
  ASSERT_TRUE(sl.CheckIntegrity());
  // Rank order must match the sorted reference exactly.
  size_t r = 0;
  for (const auto& [k, v] : ref) {
    auto* n = sl.AtRank(r);
    ASSERT_EQ(n->key, k);
    ASSERT_EQ(n->value, v);
    ASSERT_EQ(sl.RankOf(k), r);
    ++r;
  }
  // Bound queries at random probes.
  for (int probe = 0; probe < 100; ++probe) {
    const int key = static_cast<int>(rng.UniformInt(320)) - 10;
    auto* le = sl.FindLessEqual(key);
    auto it = ref.upper_bound(key);
    if (it == ref.begin()) {
      EXPECT_EQ(le, nullptr);
    } else {
      ASSERT_NE(le, nullptr);
      EXPECT_EQ(le->key, std::prev(it)->first);
    }
    auto* ge = sl.FindGreaterEqual(key);
    auto it2 = ref.lower_bound(key);
    if (it2 == ref.end()) {
      EXPECT_EQ(ge, nullptr);
    } else {
      ASSERT_NE(ge, nullptr);
      EXPECT_EQ(ge->key, it2->first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListFuzzTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace streamhull
