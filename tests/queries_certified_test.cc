// Differential tests for the certified query layer (queries/certified.h):
// for every engine kind, workload generator, and r in {8, 32, 128}, every
// certified interval must contain the exact brute-force value computed on
// the true hull of the full stream — the property the layer exists to
// provide. Also covers the root sandwich guarantee (Polygon() subset of
// the true hull subset of OuterPolygon()), tri-state consistency of the
// pairwise predicates, and the exact-view degenerate cases.

#include "queries/certified.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/convex_hull.h"
#include "stream/generators.h"

namespace streamhull {
namespace {

std::unique_ptr<PointGenerator> MakeWorkload(int kind) {
  switch (kind) {
    case 0: return std::make_unique<DiskGenerator>(11);
    case 1: return std::make_unique<SquareGenerator>(12, 0.21);
    case 2: return std::make_unique<EllipseGenerator>(13, 16.0, 0.13);
    case 3: return std::make_unique<CircleGenerator>(14, 97);
    case 4: return std::make_unique<ClusterGenerator>(15, 5);
    case 5: return std::make_unique<DriftWalkGenerator>(16);
    default: return std::make_unique<SpiralGenerator>(17, 1e-3);
  }
}
constexpr int kNumWorkloads = 7;

double BruteExtent(const std::vector<Point2>& pts, Point2 u) {
  double lo = 1e300, hi = -1e300;
  for (const Point2& p : pts) {
    const double d = Dot(p, u);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return hi - lo;
}

// (workload, r): every engine kind is swept inside the test body so the
// brute-force ground truth is computed once per stream.
class CertifiedDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(CertifiedDifferentialTest, IntervalsContainBruteTruth) {
  const auto [workload, r] = GetParam();
  const auto pts = MakeWorkload(workload)->Take(1500);
  const ConvexPolygon truth(ConvexHullOf(pts));
  const double true_diameter = DiameterBrute(truth).value;
  const double true_width = WidthBrute(truth).value;
  const double eps = 1e-7 * (1.0 + true_diameter);

  for (EngineKind kind : AllEngineKinds()) {
    EngineOptions o;
    o.hull.r = r;
    auto engine = MakeEngine(kind, o);
    engine->InsertBatch(pts);
    const SummaryView view(*engine);
    const std::string ctx =
        std::string(EngineKindName(kind)) + " r=" + std::to_string(r);

    // Root guarantee: inner subset of truth subset of outer.
    for (size_t i = 0; i < view.inner().size(); ++i) {
      ASSERT_LE(truth.DistanceOutside(view.inner()[i]), eps) << ctx;
    }
    for (size_t i = 0; i < truth.size(); ++i) {
      ASSERT_LE(view.outer().DistanceOutside(truth[i]), eps) << ctx;
    }

    const CertifiedScalar diam = CertifiedDiameter(view);
    EXPECT_LE(diam.value.lo, diam.value.hi) << ctx;
    EXPECT_LE(diam.value.lo, true_diameter + eps) << ctx;
    EXPECT_GE(diam.value.hi, true_diameter - eps) << ctx;
    // The lower witness is realized by actual stream points.
    EXPECT_LE(truth.DistanceOutside(diam.inner_witness.a), eps) << ctx;
    EXPECT_LE(truth.DistanceOutside(diam.inner_witness.b), eps) << ctx;

    const CertifiedScalar width = CertifiedWidth(view);
    EXPECT_LE(width.value.lo, true_width + eps) << ctx;
    EXPECT_GE(width.value.hi, true_width - eps) << ctx;

    for (int k = 0; k < 8; ++k) {
      const Point2 u = UnitVector(0.1234 + k * 0.3927);
      const Interval extent = CertifiedExtent(view, u);
      const double true_extent = BruteExtent(pts, u);
      EXPECT_LE(extent.lo, true_extent + eps) << ctx << " dir " << k;
      EXPECT_GE(extent.hi, true_extent - eps) << ctx << " dir " << k;
    }

    const CertifiedCircleResult circle = CertifiedEnclosingCircle(view);
    EXPECT_LE(circle.radius.lo, circle.radius.hi) << ctx;
    // The enclosing circle must cover every stream point outright.
    for (const Point2& p : pts) {
      ASSERT_LE(Distance(circle.enclosing.center, p),
                circle.enclosing.radius + eps)
          << ctx;
    }
    // Direct brute comparison where the deterministic Welzl variant is
    // safe (it degrades on long near-circular vertex rings like the
    // spiral's 1500-vertex truth hull).
    if (truth.size() <= 400) {
      const double true_radius = SmallestEnclosingCircle(truth).radius;
      EXPECT_LE(circle.radius.lo, true_radius + eps) << ctx;
      EXPECT_GE(circle.radius.hi, true_radius - eps) << ctx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CertifiedDifferentialTest,
    ::testing::Combine(::testing::Range(0, kNumWorkloads),
                       ::testing::Values(8u, 32u, 128u)));

// Two-stream layout under differential test: the true relationship runs
// from well separated through near-touching and overlapping to contained.
struct PairLayout {
  const char* name;
  Point2 a_center, b_center;
  double a_radius, b_radius;
};

const PairLayout kPairLayouts[] = {
    {"separated", {0, 0}, {4.0, 0.3}, 1.0, 1.0},
    {"near", {0, 0}, {2.05, 0}, 1.0, 1.0},
    {"overlapping", {0, 0}, {1.0, 0.2}, 1.0, 1.0},
    {"contained", {0.2, 0}, {0, 0}, 0.3, 5.0},
};

class CertifiedPairTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(CertifiedPairTest, PairIntervalsAndVerdictsMatchBruteTruth) {
  const auto [layout_index, r] = GetParam();
  const PairLayout& layout = kPairLayouts[layout_index];
  DiskGenerator gen_a(21, layout.a_radius, layout.a_center);
  DiskGenerator gen_b(22, layout.b_radius, layout.b_center);
  const auto pts_a = gen_a.Take(1200);
  const auto pts_b = gen_b.Take(1200);
  const ConvexPolygon truth_a(ConvexHullOf(pts_a));
  const ConvexPolygon truth_b(ConvexHullOf(pts_b));
  const double true_distance = Separation(truth_a, truth_b).distance;
  const double true_overlap = OverlapArea(truth_a, truth_b);
  const double scale =
      1.0 + DiameterBrute(truth_a).value + DiameterBrute(truth_b).value;
  const double eps = 1e-7 * scale;
  const double area_eps = 1e-6 * scale * scale;

  for (EngineKind kind : AllEngineKinds()) {
    EngineOptions o;
    o.hull.r = r;
    auto ea = MakeEngine(kind, o);
    auto eb = MakeEngine(kind, o);
    ea->InsertBatch(pts_a);
    eb->InsertBatch(pts_b);
    const SummaryView va(*ea);
    const SummaryView vb(*eb);
    const std::string ctx = std::string(layout.name) + "/" +
                            EngineKindName(kind) + " r=" + std::to_string(r);

    const CertifiedSeparationResult sep = CertifiedSeparation(va, vb);
    EXPECT_LE(sep.distance.lo, sep.distance.hi) << ctx;
    EXPECT_LE(sep.distance.lo, true_distance + eps) << ctx;
    EXPECT_GE(sep.distance.hi, true_distance - eps) << ctx;
    switch (sep.separable) {
      case Certainty::kTrue:
        EXPECT_GT(true_distance, 0.0) << ctx;
        EXPECT_TRUE(sep.certificate.separable) << ctx;
        // The certificate's margin is the certified lower bound.
        EXPECT_LE(sep.certificate.margin, true_distance + eps) << ctx;
        break;
      case Certainty::kFalse:
        EXPECT_LE(true_distance, eps) << ctx;
        break;
      case Certainty::kUnknown:
        break;  // Truth may fall either way inside the band.
    }

    const Interval overlap = CertifiedOverlapArea(va, vb);
    EXPECT_LE(overlap.lo, true_overlap + area_eps) << ctx;
    EXPECT_GE(overlap.hi, true_overlap - area_eps) << ctx;

    const CertifiedContainmentResult a_in_b = CertifiedContainment(va, vb);
    double worst_escape = 0;
    for (size_t i = 0; i < truth_a.size(); ++i) {
      worst_escape = std::max(worst_escape, truth_b.DistanceOutside(truth_a[i]));
    }
    switch (a_in_b.contained) {
      case Certainty::kTrue:
        EXPECT_LE(worst_escape, eps) << ctx;
        break;
      case Certainty::kFalse:
        // A certified-false verdict carries a witness stream point that
        // provably escapes b's true hull.
        EXPECT_GT(worst_escape, 0.0) << ctx;
        EXPECT_GT(truth_b.DistanceOutside(a_in_b.witness), 0.0) << ctx;
        break;
      case Certainty::kUnknown:
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, CertifiedPairTest,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Values(8u, 32u,
                                                              128u)));

// At a generous r, the well-separated and contained layouts must actually
// be decided, not answered kUnknown — otherwise the tri-state layer would
// be vacuously "correct" by never committing.
TEST(CertifiedPairTest, VerdictsAreDecisiveAtHighResolution) {
  EngineOptions o;
  o.hull.r = 64;

  auto far_a = MakeEngine(EngineKind::kAdaptive, o);
  auto far_b = MakeEngine(EngineKind::kAdaptive, o);
  far_a->InsertBatch(DiskGenerator(31, 1.0, {0, 0}).Take(2000));
  far_b->InsertBatch(DiskGenerator(32, 1.0, {4, 0}).Take(2000));
  EXPECT_EQ(CertifiedSeparation(SummaryView(*far_a), SummaryView(*far_b))
                .separable,
            Certainty::kTrue);

  auto in_small = MakeEngine(EngineKind::kAdaptive, o);
  auto in_big = MakeEngine(EngineKind::kAdaptive, o);
  in_small->InsertBatch(DiskGenerator(33, 0.3, {0.2, 0}).Take(2000));
  in_big->InsertBatch(CircleGenerator(34, 256, 5.0).Take(2000));
  const SummaryView vs(*in_small);
  const SummaryView vb(*in_big);
  EXPECT_EQ(CertifiedSeparation(vs, vb).separable, Certainty::kFalse);
  EXPECT_EQ(CertifiedContainment(vs, vb).contained, Certainty::kTrue);
  EXPECT_EQ(CertifiedContainment(vb, vs).contained, Certainty::kFalse);
}

TEST(IntervalTest, Basics) {
  const Interval i{1.0, 3.0};
  EXPECT_DOUBLE_EQ(i.Width(), 2.0);
  EXPECT_DOUBLE_EQ(i.Mid(), 2.0);
  EXPECT_TRUE(i.Contains(1.0));
  EXPECT_TRUE(i.Contains(3.0));
  EXPECT_FALSE(i.Contains(0.999));
  EXPECT_FALSE(i.Contains(3.001));
}

TEST(CertaintyTest, Names) {
  EXPECT_STREQ(CertaintyName(Certainty::kTrue), "true");
  EXPECT_STREQ(CertaintyName(Certainty::kFalse), "false");
  EXPECT_STREQ(CertaintyName(Certainty::kUnknown), "unknown");
}

// Exact views make the certified API usable with fully-known polygons:
// zero-width intervals, never kUnknown.
TEST(SummaryViewTest, ExactViewCollapsesIntervals) {
  const ConvexPolygon square({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const SummaryView view = SummaryView::Exact(square);
  const CertifiedScalar diam = CertifiedDiameter(view);
  EXPECT_DOUBLE_EQ(diam.value.Width(), 0.0);
  EXPECT_NEAR(diam.value.lo, 2.0 * std::sqrt(2.0), 1e-12);

  const ConvexPolygon far({{10, 0}, {12, 0}, {12, 2}, {10, 2}});
  const CertifiedSeparationResult sep =
      CertifiedSeparation(view, SummaryView::Exact(far));
  EXPECT_EQ(sep.separable, Certainty::kTrue);
  EXPECT_NEAR(sep.distance.lo, 8.0, 1e-12);
  EXPECT_NEAR(sep.distance.hi, 8.0, 1e-12);
  EXPECT_EQ(CertifiedContainment(view, SummaryView::Exact(far)).contained,
            Certainty::kFalse);
}

TEST(SummaryViewTest, EmptyAndSinglePointViews) {
  const SummaryView empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(CertifiedDiameter(empty).value.hi, 0.0);
  EXPECT_DOUBLE_EQ(CertifiedOverlapArea(empty, empty).hi, 0.0);
  // Empty inside anything; nothing (nonempty) inside empty.
  EXPECT_EQ(CertifiedContainment(empty, empty).contained, Certainty::kTrue);

  EngineOptions o;
  o.hull.r = 8;
  auto engine = MakeEngine(EngineKind::kAdaptive, o);
  engine->Insert({3, 4});
  const SummaryView point(*engine);
  EXPECT_FALSE(point.empty());
  const CertifiedScalar diam = CertifiedDiameter(point);
  EXPECT_NEAR(diam.value.hi, 0.0, 1e-9);
  const Interval extent = CertifiedExtent(point, {1, 0});
  EXPECT_NEAR(extent.hi, 0.0, 1e-9);
  EXPECT_EQ(CertifiedContainment(point, empty).contained, Certainty::kFalse);
}

}  // namespace
}  // namespace streamhull
