// End-to-end tests for the streamhulld server core (server/streamhulld.h)
// over in-process pipe transports: session authentication, the
// OPEN/DATA/ACK/NAK protocol, per-session backpressure, wire-protocol
// certified queries, snapshot persistence with restart restore, and a
// mini soak for sanitizer coverage. This suite spawns the server's
// ThreadPool, so CI also runs it under ThreadSanitizer.

#include "server/streamhulld.h"

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hull_engine.h"
#include "core/snapshot.h"
#include "server/delta_sender.h"
#include "server/transport.h"
#include "server/wire.h"

namespace streamhull {
namespace {

constexpr const char* kTenant = "acme";
constexpr const char* kToken = "acme-token";

ServerOptions SmallServerOptions() {
  ServerOptions o;
  o.engine.hull.r = 16;
  o.num_threads = 2;
  return o;
}

// A minimal synchronous client: one pipe session, helpers that pump the
// server until the expected reply arrives.
struct Client {
  std::unique_ptr<PipeTransport> link;
  FrameDecoder replies;

  void Send(const SessionMessage& msg) {
    ASSERT_TRUE(link->Send(EncodeSessionFrame(msg)).ok());
  }

  // Pumps the server until a reply message is available (or pumps run out).
  bool Await(StreamHullServer* server, SessionMessage* out) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      server->PumpOnce();
      server->Flush();
      std::string bytes;
      (void)link->Recv(&bytes);
      replies.Feed(bytes);
      std::string frame;
      bool got = false;
      if (!replies.Next(&frame, &got).ok()) return false;
      if (got) return DecodeSessionMessage(frame, out).ok();
    }
    return false;
  }
};

Client Attach(StreamHullServer* server) {
  Client c;
  auto [client_end, server_end] = PipeTransport::CreatePair();
  c.link = std::move(client_end);
  server->AttachSession(std::move(server_end));
  return c;
}

// Full handshake: HELLO -> HELLO_OK -> OPEN -> OPEN_OK.
void Handshake(StreamHullServer* server, Client* c,
               const std::string& stream, uint64_t* held = nullptr) {
  SessionMessage hello;
  hello.type = SessionMessageType::kHello;
  hello.version = kServerProtocolVersion;
  hello.token = kToken;
  c->Send(hello);
  SessionMessage reply;
  ASSERT_TRUE(c->Await(server, &reply));
  ASSERT_EQ(reply.type, SessionMessageType::kHelloOk);
  SessionMessage open;
  open.type = SessionMessageType::kOpen;
  open.stream = stream;
  c->Send(open);
  ASSERT_TRUE(c->Await(server, &reply));
  ASSERT_EQ(reply.type, SessionMessageType::kOpenOk);
  if (held != nullptr) *held = reply.generation;
}

TEST(StreamHullServerTest, RejectsBadToken) {
  StreamHullServer server(SmallServerOptions());
  ASSERT_TRUE(server.AddTenant(kTenant, kToken).ok());
  Client c = Attach(&server);
  SessionMessage hello;
  hello.type = SessionMessageType::kHello;
  hello.version = kServerProtocolVersion;
  hello.token = "wrong-token";
  c.Send(hello);
  SessionMessage reply;
  ASSERT_TRUE(c.Await(&server, &reply));
  EXPECT_EQ(reply.type, SessionMessageType::kError);
  // The session is closed: the transport drains to IOError eventually.
  server.PumpOnce();
  server.Flush();
  server.PumpOnce();
  EXPECT_EQ(server.session_count(), 0u);
}

TEST(StreamHullServerTest, RejectsWrongProtocolVersion) {
  StreamHullServer server(SmallServerOptions());
  ASSERT_TRUE(server.AddTenant(kTenant, kToken).ok());
  Client c = Attach(&server);
  SessionMessage hello;
  hello.type = SessionMessageType::kHello;
  hello.version = kServerProtocolVersion + 7;
  hello.token = kToken;
  c.Send(hello);
  SessionMessage reply;
  ASSERT_TRUE(c.Await(&server, &reply));
  EXPECT_EQ(reply.type, SessionMessageType::kError);
}

TEST(StreamHullServerTest, DataBeforeHelloClosesSession) {
  StreamHullServer server(SmallServerOptions());
  ASSERT_TRUE(server.AddTenant(kTenant, kToken).ok());
  Client c = Attach(&server);
  SessionMessage data;
  data.type = SessionMessageType::kData;
  data.stream = "s";
  data.payload = "junk";
  c.Send(data);
  SessionMessage reply;
  ASSERT_TRUE(c.Await(&server, &reply));
  EXPECT_EQ(reply.type, SessionMessageType::kError);
}

TEST(StreamHullServerTest, RejectsInvalidStreamNames) {
  StreamHullServer server(SmallServerOptions());
  ASSERT_TRUE(server.AddTenant(kTenant, kToken).ok());
  Client c = Attach(&server);
  SessionMessage hello;
  hello.type = SessionMessageType::kHello;
  hello.version = kServerProtocolVersion;
  hello.token = kToken;
  c.Send(hello);
  SessionMessage reply;
  ASSERT_TRUE(c.Await(&server, &reply));
  ASSERT_EQ(reply.type, SessionMessageType::kHelloOk);
  SessionMessage open;
  open.type = SessionMessageType::kOpen;
  open.stream = "../etc/passwd";
  c.Send(open);
  ASSERT_TRUE(c.Await(&server, &reply));
  EXPECT_EQ(reply.type, SessionMessageType::kError);
}

TEST(StreamHullServerTest, IngestAckAndCertifiedQueryRoundTrip) {
  StreamHullServer server(SmallServerOptions());
  ASSERT_TRUE(server.AddTenant(kTenant, kToken).ok());
  Client c = Attach(&server);
  Handshake(&server, &c, "s0");

  EngineOptions engine_options;
  engine_options.hull.r = 16;
  auto engine = MakeEngine(EngineKind::kAdaptive, engine_options);
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    engine->Insert({rng.Normal(), rng.Normal()});
  }
  DeltaSender sender(engine.get());
  DeltaSender::Frame frame;
  ASSERT_TRUE(sender.NextFrame(&frame).ok());

  SessionMessage data;
  data.type = SessionMessageType::kData;
  data.stream = "s0";
  data.payload = frame.bytes;
  c.Send(data);
  SessionMessage reply;
  ASSERT_TRUE(c.Await(&server, &reply));
  ASSERT_EQ(reply.type, SessionMessageType::kAck);
  EXPECT_EQ(reply.generation, engine->num_points());

  // A delta on top.
  for (int i = 0; i < 500; ++i) {
    engine->Insert({rng.Normal(), rng.Normal()});
  }
  ASSERT_TRUE(sender.NextFrame(&frame).ok());
  EXPECT_TRUE(frame.is_delta);
  data.payload = frame.bytes;
  c.Send(data);
  ASSERT_TRUE(c.Await(&server, &reply));
  ASSERT_EQ(reply.type, SessionMessageType::kAck);
  EXPECT_EQ(reply.generation, engine->num_points());

  // Certified diameter over the wire matches the server-side view.
  SessionMessage query;
  query.type = SessionMessageType::kQuery;
  query.query = ServerQueryKind::kDiameter;
  query.stream = "s0";
  c.Send(query);
  ASSERT_TRUE(c.Await(&server, &reply));
  ASSERT_EQ(reply.type, SessionMessageType::kQueryResult);
  EXPECT_GT(reply.hi, 0.0);
  EXPECT_LE(reply.lo, reply.hi);

  TenantMetrics tm;
  ASSERT_TRUE(server.Metrics(kTenant, &tm).ok());
  EXPECT_EQ(tm.full_frames, 1u);
  EXPECT_EQ(tm.delta_frames, 1u);
  EXPECT_EQ(tm.queries, 1u);
}

TEST(StreamHullServerTest, GenerationGapDrawsNakWithHeldGeneration) {
  StreamHullServer server(SmallServerOptions());
  ASSERT_TRUE(server.AddTenant(kTenant, kToken).ok());
  Client c = Attach(&server);
  Handshake(&server, &c, "s0");

  EngineOptions engine_options;
  engine_options.hull.r = 16;
  auto engine = MakeEngine(EngineKind::kAdaptive, engine_options);
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    engine->Insert({rng.Normal(), rng.Normal()});
  }
  DeltaSender sender(engine.get());
  DeltaSender::Frame full, lost, next;
  ASSERT_TRUE(sender.NextFrame(&full).ok());
  SessionMessage data;
  data.type = SessionMessageType::kData;
  data.stream = "s0";
  data.payload = full.bytes;
  c.Send(data);
  SessionMessage reply;
  ASSERT_TRUE(c.Await(&server, &reply));
  ASSERT_EQ(reply.type, SessionMessageType::kAck);

  // Produce a delta but "lose" it; the next delta chains past the gap.
  for (int i = 0; i < 300; ++i) engine->Insert({rng.Normal(), rng.Normal()});
  ASSERT_TRUE(sender.NextFrame(&lost).ok());
  for (int i = 0; i < 300; ++i) engine->Insert({rng.Normal(), rng.Normal()});
  ASSERT_TRUE(sender.NextFrame(&next).ok());
  ASSERT_TRUE(next.is_delta);
  data.payload = next.bytes;
  c.Send(data);
  ASSERT_TRUE(c.Await(&server, &reply));
  ASSERT_EQ(reply.type, SessionMessageType::kNak);
  EXPECT_EQ(reply.generation, full.generation);  // What the server holds.

  // The NAK-triggered resync heals the stream.
  sender.OnNak();
  DeltaSender::Frame resync;
  ASSERT_TRUE(sender.NextFrame(&resync).ok());
  EXPECT_FALSE(resync.is_delta);
  data.payload = resync.bytes;
  c.Send(data);
  ASSERT_TRUE(c.Await(&server, &reply));
  ASSERT_EQ(reply.type, SessionMessageType::kAck);
  EXPECT_EQ(reply.generation, engine->num_points());

  TenantMetrics tm;
  ASSERT_TRUE(server.Metrics(kTenant, &tm).ok());
  EXPECT_EQ(tm.resyncs, 1u);
}

TEST(StreamHullServerTest, MalformedDataPayloadDrawsErrorNotCrash) {
  StreamHullServer server(SmallServerOptions());
  ASSERT_TRUE(server.AddTenant(kTenant, kToken).ok());
  Client c = Attach(&server);
  Handshake(&server, &c, "s0");
  SessionMessage data;
  data.type = SessionMessageType::kData;
  data.stream = "s0";
  data.payload = "definitely not a snapshot frame";
  c.Send(data);
  SessionMessage reply;
  ASSERT_TRUE(c.Await(&server, &reply));
  EXPECT_EQ(reply.type, SessionMessageType::kError);
  TenantMetrics tm;
  ASSERT_TRUE(server.Metrics(kTenant, &tm).ok());
  EXPECT_EQ(tm.rejected_frames, 1u);
}

TEST(StreamHullServerTest, SnapshotSaveThenRestoreAcrossRestart) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      "streamhulld_test_snapshots";
  std::filesystem::remove_all(dir);
  ServerOptions options = SmallServerOptions();
  options.snapshot_dir = dir.string();

  EngineOptions engine_options;
  engine_options.hull.r = 16;
  auto engine = MakeEngine(EngineKind::kAdaptive, engine_options);
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    engine->Insert({rng.Normal() * 3.0, rng.Normal()});
  }
  uint64_t acked_generation = 0;
  {
    StreamHullServer server(options);
    ASSERT_TRUE(server.AddTenant(kTenant, kToken).ok());
    Client c = Attach(&server);
    Handshake(&server, &c, "s0");
    DeltaSender sender(engine.get());
    DeltaSender::Frame frame;
    ASSERT_TRUE(sender.NextFrame(&frame).ok());
    SessionMessage data;
    data.type = SessionMessageType::kData;
    data.stream = "s0";
    data.payload = frame.bytes;
    c.Send(data);
    SessionMessage reply;
    ASSERT_TRUE(c.Await(&server, &reply));
    ASSERT_EQ(reply.type, SessionMessageType::kAck);
    acked_generation = reply.generation;
    ASSERT_TRUE(server.SaveSnapshots().ok());
  }

  // A new server instance restores the stream and reports its generation
  // at OPEN, so a reconnecting producer can chain deltas immediately.
  StreamHullServer server(options);
  ASSERT_TRUE(server.AddTenant(kTenant, kToken).ok());
  TenantMetrics tm;
  ASSERT_TRUE(server.Metrics(kTenant, &tm).ok());
  EXPECT_EQ(tm.restored_streams, 1u);
  Client c = Attach(&server);
  uint64_t held = 0;
  Handshake(&server, &c, "s0", &held);
  EXPECT_EQ(held, acked_generation);

  // And the restored view still answers certified queries.
  SummaryView view;
  ASSERT_TRUE(server.View(kTenant, "s0", &view).ok());

  // The producer's next delta applies against the restored view.
  DeltaSender sender(engine.get());
  sender.Resume(acked_generation);
  for (int i = 0; i < 500; ++i) {
    engine->Insert({rng.Normal() * 3.0, rng.Normal()});
  }
  DeltaSender::Frame frame;
  ASSERT_TRUE(sender.NextFrame(&frame).ok());
  EXPECT_TRUE(frame.is_delta);
  SessionMessage data;
  data.type = SessionMessageType::kData;
  data.stream = "s0";
  data.payload = frame.bytes;
  c.Send(data);
  SessionMessage reply;
  ASSERT_TRUE(c.Await(&server, &reply));
  EXPECT_EQ(reply.type, SessionMessageType::kAck);
  std::filesystem::remove_all(dir);
}

TEST(StreamHullServerTest, TenantsAreIsolated) {
  StreamHullServer server(SmallServerOptions());
  ASSERT_TRUE(server.AddTenant("alpha", "alpha-token").ok());
  ASSERT_TRUE(server.AddTenant("beta", "beta-token").ok());
  // Duplicate tenant name and duplicate token are refused.
  EXPECT_FALSE(server.AddTenant("alpha", "other").ok());
  EXPECT_FALSE(server.AddTenant("gamma", "alpha-token").ok());

  Client a = Attach(&server);
  SessionMessage hello;
  hello.type = SessionMessageType::kHello;
  hello.version = kServerProtocolVersion;
  hello.token = "alpha-token";
  a.Send(hello);
  SessionMessage reply;
  ASSERT_TRUE(a.Await(&server, &reply));
  ASSERT_EQ(reply.type, SessionMessageType::kHelloOk);
  SessionMessage open;
  open.type = SessionMessageType::kOpen;
  open.stream = "shared-name";
  a.Send(open);
  ASSERT_TRUE(a.Await(&server, &reply));
  ASSERT_EQ(reply.type, SessionMessageType::kOpenOk);

  // The stream registered under alpha only: tenants share nothing.
  TenantMetrics alpha, beta;
  ASSERT_TRUE(server.Metrics("alpha", &alpha).ok());
  ASSERT_TRUE(server.Metrics("beta", &beta).ok());
  EXPECT_EQ(alpha.streams, 1u);
  EXPECT_EQ(beta.streams, 0u);
  SummaryView view;
  EXPECT_FALSE(server.View("beta", "shared-name", &view).ok());
}

TEST(StreamHullServerTest, AtThePendingBoundThePumpStopsReadingTheTransport) {
  // max_pending_per_session = 0 keeps the session permanently at its
  // bound: the pump must not Recv at all, so the client's bytes stay
  // queued in the pipe instead of accumulating in the server-side
  // decoder — per-session buffering is bounded by refusing to read the
  // transport, never grown behind the strand's back.
  ServerOptions options = SmallServerOptions();
  options.max_pending_per_session = 0;
  StreamHullServer server(options);
  ASSERT_TRUE(server.AddTenant(kTenant, kToken).ok());
  Client c = Attach(&server);
  SessionMessage hello;
  hello.type = SessionMessageType::kHello;
  hello.version = kServerProtocolVersion;
  hello.token = kToken;
  c.Send(hello);
  const size_t queued = c.link->outbox_bytes();
  ASSERT_GT(queued, 0u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(server.PumpOnce(), 0u);
    server.Flush();
  }
  EXPECT_EQ(c.link->outbox_bytes(), queued);
}

TEST(StreamHullServerTest, BoundOneDrainsABurstWithoutLossOrDeadlock) {
  // Liveness of transport-level backpressure: a burst far past the bound
  // is read as the strand catches up, and every frame is eventually
  // ACKed in order.
  ServerOptions options = SmallServerOptions();
  options.max_pending_per_session = 1;
  StreamHullServer server(options);
  ASSERT_TRUE(server.AddTenant(kTenant, kToken).ok());
  Client c = Attach(&server);
  Handshake(&server, &c, "s0");

  EngineOptions engine_options;
  engine_options.hull.r = 16;
  auto engine = MakeEngine(EngineKind::kAdaptive, engine_options);
  DeltaSender sender(engine.get());
  Rng rng(23);
  constexpr int kFrames = 16;
  for (int f = 0; f < kFrames; ++f) {
    for (int i = 0; i < 100; ++i) {
      engine->Insert({rng.Normal(), rng.Normal()});
    }
    DeltaSender::Frame frame;
    ASSERT_TRUE(sender.NextFrame(&frame).ok());
    SessionMessage data;
    data.type = SessionMessageType::kData;
    data.stream = "s0";
    data.payload = frame.bytes;
    c.Send(data);  // The whole burst queues before the server reads any.
  }
  SessionMessage reply;
  for (int acks = 0; acks < kFrames; ++acks) {
    ASSERT_TRUE(c.Await(&server, &reply));
    ASSERT_EQ(reply.type, SessionMessageType::kAck);
  }
  EXPECT_EQ(reply.generation, engine->num_points());
  EXPECT_EQ(c.link->outbox_bytes(), 0u);
}

TEST(StreamHullServerTest, MiniSoakManyProducersWithLossAndBackpressure) {
  // Sanitizer-facing mini soak: several concurrent sessions, injected
  // frame loss, NAK recovery, bounded windows, interleaved queries.
  ServerOptions options = SmallServerOptions();
  options.max_pending_per_session = 4;
  StreamHullServer server(options);
  ASSERT_TRUE(server.AddTenant(kTenant, kToken).ok());

  constexpr int kProducers = 4;
  struct Producer {
    std::unique_ptr<HullEngine> engine;
    std::unique_ptr<DeltaSender> sender;
    Client client;
    std::string stream;
  };
  EngineOptions engine_options;
  engine_options.hull.r = 16;
  std::vector<Producer> producers(kProducers);
  Rng rng(14);
  for (int i = 0; i < kProducers; ++i) {
    Producer& p = producers[i];
    p.stream = "s" + std::to_string(i);
    p.engine = MakeEngine(AllEngineKinds()[i % AllEngineKinds().size()],
                          engine_options);
    DeltaSenderOptions sender_options;
    sender_options.max_in_flight = 2;
    p.sender = std::make_unique<DeltaSender>(p.engine.get(), sender_options);
    p.client = Attach(&server);
    Handshake(&server, &p.client, p.stream);
  }

  for (int round = 0; round < 20; ++round) {
    for (Producer& p : producers) {
      for (int i = 0; i < 100; ++i) {
        p.engine->Insert({rng.Normal(), rng.Normal()});
      }
      if (!p.sender->Ready()) continue;
      DeltaSender::Frame frame;
      ASSERT_TRUE(p.sender->NextFrame(&frame).ok());
      if ((round * 7 + (&p - &producers[0]) * 3) % 11 == 0) {
        p.client.link->DropNextSends(1);
      }
      SessionMessage data;
      data.type = SessionMessageType::kData;
      data.stream = p.stream;
      data.payload = frame.bytes;
      p.client.Send(data);
    }
    server.PumpOnce();
    server.Flush();
    for (Producer& p : producers) {
      std::string bytes;
      (void)p.client.link->Recv(&bytes);
      p.client.replies.Feed(bytes);
      for (;;) {
        std::string payload;
        bool got = false;
        ASSERT_TRUE(p.client.replies.Next(&payload, &got).ok());
        if (!got) break;
        SessionMessage msg;
        ASSERT_TRUE(DecodeSessionMessage(payload, &msg).ok());
        if (msg.type == SessionMessageType::kAck) {
          p.sender->OnAck(msg.generation);
        } else if (msg.type == SessionMessageType::kNak) {
          p.sender->OnNak();
        }
      }
    }
  }

  // Drain to quiescence, then every stream must hold a consistent view.
  for (int i = 0; i < 10; ++i) {
    server.PumpOnce();
    server.Flush();
  }
  TenantMetrics tm;
  ASSERT_TRUE(server.Metrics(kTenant, &tm).ok());
  EXPECT_EQ(tm.streams, static_cast<uint64_t>(kProducers));
  EXPECT_GT(tm.full_frames + tm.delta_frames, 0u);
  EXPECT_EQ(tm.rejected_frames, 0u);
}

}  // namespace
}  // namespace streamhull
