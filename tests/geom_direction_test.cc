// Unit tests for exact dyadic direction arithmetic (geom/direction.h).

#include "geom/direction.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace streamhull {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

TEST(DirectionTest, UniformBasics) {
  const Direction d = Direction::Uniform(3, 16);
  EXPECT_EQ(d.base_r(), 16u);
  EXPECT_EQ(d.num(), 3u);
  EXPECT_EQ(d.level(), 0u);
  EXPECT_TRUE(d.IsUniform());
  EXPECT_NEAR(d.Radians(), kTwoPi * 3 / 16, 1e-15);
}

TEST(DirectionTest, ToVectorMatchesRadians) {
  const Direction d = Direction::Uniform(5, 32);
  const Point2 v = d.ToVector();
  EXPECT_NEAR(v.x, std::cos(d.Radians()), 1e-15);
  EXPECT_NEAR(v.y, std::sin(d.Radians()), 1e-15);
}

TEST(DirectionTest, MidpointOfAdjacentUniform) {
  const Direction a = Direction::Uniform(2, 8);
  const Direction b = Direction::Uniform(3, 8);
  const Direction m = Direction::Midpoint(a, b);
  EXPECT_EQ(m.level(), 1u);
  EXPECT_EQ(m.num(), 5u);  // 2.5 at level 1 over denominator 8*2.
  EXPECT_FALSE(m.IsUniform());
  EXPECT_NEAR(m.Radians(), kTwoPi * 2.5 / 8, 1e-15);
}

TEST(DirectionTest, MidpointAcrossWrap) {
  // Midpoint of the last uniform edge [r-1, 0) wraps past zero.
  const Direction a = Direction::Uniform(7, 8);
  const Direction b = Direction::Uniform(0, 8);
  const Direction m = Direction::Midpoint(a, b);
  EXPECT_NEAR(m.Radians(), kTwoPi * 7.5 / 8, 1e-15);
  EXPECT_EQ(m.level(), 1u);
}

TEST(DirectionTest, RepeatedBisectionLevels) {
  // index(theta) == level: one more than the depth where theta bisects.
  Direction lo = Direction::Uniform(0, 8);
  Direction hi = Direction::Uniform(1, 8);
  for (uint32_t depth = 0; depth < 20; ++depth) {
    const Direction mid = Direction::Midpoint(lo, hi);
    EXPECT_EQ(mid.level(), depth + 1);
    hi = mid;  // Always refine toward lo.
  }
}

TEST(DirectionTest, MidpointCanonicalizes) {
  // Bisecting [0/8, 1/8] then the right half [1/16, 1/8] gives 3/32; further
  // bisection of [3/32, 4/32] gives 7/64, all in lowest terms (odd num).
  const Direction a = Direction::Uniform(0, 8);
  const Direction b = Direction::Uniform(1, 8);
  const Direction m1 = Direction::Midpoint(a, b);  // 1/16.
  const Direction m2 = Direction::Midpoint(m1, b);  // 3/32.
  EXPECT_EQ(m2.level(), 2u);
  EXPECT_EQ(m2.num(), 3u);
  // Midpoint of [m1, m2] = 5/64 -> odd numerator at level 3... wait:
  // (2/32 + 3/32)/2 = 5/64.
  const Direction m3 = Direction::Midpoint(m1, m2);
  EXPECT_EQ(m3.level(), 3u);
  EXPECT_EQ(m3.num(), 5u);
}

TEST(DirectionTest, MidpointOfEqualEndpointsBisectsFullTurn) {
  const Direction a = Direction::Uniform(2, 8);
  const Direction m = Direction::Midpoint(a, a);
  // Half a turn past 2/8 = 2/8 + 4/8 = 6/8.
  EXPECT_TRUE(m.IsUniform());
  EXPECT_EQ(m.num(), 6u);
}

TEST(DirectionTest, ComparisonAcrossLevels) {
  const Direction a = Direction::Uniform(1, 8);                    // 1/8.
  const Direction b = Direction::Midpoint(a, Direction::Uniform(2, 8));  // 1.5/8
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a);
  EXPECT_GE(a, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Direction::Uniform(1, 8));
}

TEST(DirectionTest, OrderingMatchesRadians) {
  // Build a mixed-level set and verify operator< agrees with angle order.
  std::vector<Direction> dirs;
  for (uint32_t j = 0; j < 8; ++j) dirs.push_back(Direction::Uniform(j, 8));
  for (uint32_t j = 0; j < 8; ++j) {
    const Direction m = Direction::Midpoint(Direction::Uniform(j, 8),
                                            Direction::Uniform((j + 1) % 8, 8));
    dirs.push_back(m);
    dirs.push_back(Direction::Midpoint(Direction::Uniform(j, 8), m));
  }
  for (const Direction& x : dirs) {
    for (const Direction& y : dirs) {
      EXPECT_EQ(x < y, x.Radians() < y.Radians() - 1e-15)
          << x << " vs " << y;
    }
  }
}

TEST(DirectionTest, CcwGapBasics) {
  const Direction a = Direction::Uniform(1, 8);
  const Direction b = Direction::Uniform(3, 8);
  const auto gap = a.CcwGapTo(b);
  EXPECT_NEAR(gap.Radians(8), kTwoPi * 2 / 8, 1e-15);
  // Reverse direction wraps the other way.
  const auto rgap = b.CcwGapTo(a);
  EXPECT_NEAR(rgap.Radians(8), kTwoPi * 6 / 8, 1e-15);
}

TEST(DirectionTest, CcwGapZeroForEqual) {
  const Direction a = Direction::Uniform(5, 16);
  EXPECT_EQ(a.CcwGapTo(a).units, 0u);
}

TEST(DirectionTest, CcwGapMixedLevels) {
  const Direction a = Direction::Uniform(0, 8);
  const Direction b = Direction::Uniform(1, 8);
  const Direction m = Direction::Midpoint(a, b);
  EXPECT_NEAR(a.CcwGapTo(m).Radians(8), kTwoPi / 16, 1e-15);
  EXPECT_NEAR(m.CcwGapTo(b).Radians(8), kTwoPi / 16, 1e-15);
}

TEST(DirectionTest, ScaledNumLifting) {
  const Direction d = Direction::Uniform(3, 8);
  EXPECT_EQ(d.ScaledNum(0), 3u);
  EXPECT_EQ(d.ScaledNum(2), 12u);
}

TEST(DirectionTest, DeepBisectionStaysExact) {
  // 30 levels of bisection toward the same endpoint: gaps halve exactly.
  Direction lo = Direction::Uniform(0, 16);
  Direction hi = Direction::Uniform(1, 16);
  double expected = kTwoPi / 16;
  for (int i = 0; i < 30; ++i) {
    const Direction mid = Direction::Midpoint(lo, hi);
    expected /= 2;
    EXPECT_NEAR(lo.CcwGapTo(mid).Radians(16), expected, expected * 1e-12);
    hi = mid;
  }
}

TEST(DirectionTest, FromRawRoundTrip) {
  // Every direction the refinement process can produce must survive the
  // (num, level) -> FromRaw round trip used by the snapshot codec.
  std::vector<Direction> dirs;
  for (uint32_t j = 0; j < 8; ++j) dirs.push_back(Direction::Uniform(j, 8));
  for (uint32_t j = 0; j < 8; ++j) {
    Direction lo = Direction::Uniform(j, 8);
    Direction hi = Direction::Uniform((j + 1) % 8, 8);
    for (int d = 0; d < 6; ++d) {
      const Direction mid = Direction::Midpoint(lo, hi);
      dirs.push_back(mid);
      if (d % 2 == 0) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }
  for (const Direction& d : dirs) {
    const Direction back = Direction::FromRaw(d.num(), d.level(), d.base_r());
    EXPECT_EQ(back, d);
    EXPECT_DOUBLE_EQ(back.Radians(), d.Radians());
  }
}

TEST(DirectionDeathTest, FromRawRejectsNonCanonical) {
  EXPECT_DEATH(Direction::FromRaw(2, 1, 8), "CHECK");   // Even num, level>0.
  EXPECT_DEATH(Direction::FromRaw(99, 0, 8), "CHECK");  // Out of range.
}

TEST(DirectionDeathTest, MidpointRequiresSameBase) {
  const Direction a = Direction::Uniform(0, 8);
  const Direction b = Direction::Uniform(0, 16);
  EXPECT_DEATH(Direction::Midpoint(a, b), "CHECK");
}

}  // namespace
}  // namespace streamhull
