// Tests for the monotone threshold queues (container/bucket_queue.h).

#include "container/bucket_queue.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace streamhull {
namespace {

TEST(PowerOfTwoExponentTest, ExactPowers) {
  EXPECT_EQ(PowerOfTwoExponent(1.0), 0);
  EXPECT_EQ(PowerOfTwoExponent(2.0), 1);
  EXPECT_EQ(PowerOfTwoExponent(1024.0), 10);
  EXPECT_EQ(PowerOfTwoExponent(0.5), -1);
}

TEST(PowerOfTwoExponentTest, FloorsBetweenPowers) {
  EXPECT_EQ(PowerOfTwoExponent(3.0), 1);
  EXPECT_EQ(PowerOfTwoExponent(1023.9), 9);
  EXPECT_EQ(PowerOfTwoExponent(0.75), -1);
}

TEST(BucketQueueTest, PopBelowDrainsRoundedThresholds) {
  BucketThresholdQueue<int> q;
  q.Push(10.0, 1);   // Bucket 2^3 = 8.
  q.Push(100.0, 2);  // Bucket 2^6 = 64.
  q.Push(7.9, 3);    // Bucket 2^2 = 4.
  std::vector<int> out;
  q.PopBelow(8.0, &out);  // Strictly below 8: drains only bucket 4.
  EXPECT_EQ(out, std::vector<int>{3});
  q.PopBelow(8.1, &out);  // Now bucket 8 drains too.
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{1, 3}));
  EXPECT_EQ(q.size(), 1u);
}

TEST(BucketQueueTest, RoundingMakesPopsEarlyNeverLate) {
  // An item with threshold T must pop no later than P = T (rounded down to
  // 2^floor(lg T) <= T), and may pop as early as P just above T/2.
  BucketThresholdQueue<int> q;
  q.Push(100.0, 1);  // Bucket 64.
  std::vector<int> out;
  q.PopBelow(64.0, &out);
  EXPECT_TRUE(out.empty());
  q.PopBelow(64.5, &out);  // Early pop: P well below T=100.
  EXPECT_EQ(out, std::vector<int>{1});
}

TEST(BucketQueueTest, PushExponentOverridesRounding) {
  BucketThresholdQueue<int> q;
  q.PushExponent(7, 1);  // Threshold 128 regardless of any value.
  std::vector<int> out;
  q.PopBelow(128.0, &out);
  EXPECT_TRUE(out.empty());
  q.PopBelow(129.0, &out);
  EXPECT_EQ(out, std::vector<int>{1});
}

TEST(BucketQueueTest, TinyThresholdsSaturate) {
  BucketThresholdQueue<int> q;
  q.Push(1e-320, 1);  // Denormal range: saturates, must not crash.
  std::vector<int> out;
  q.PopBelow(1e-300, &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(HeapQueueTest, ExactThresholdSemantics) {
  HeapThresholdQueue<int> q;
  q.Push(10.0, 1);
  q.Push(5.0, 2);
  q.Push(20.0, 3);
  std::vector<int> out;
  q.PopBelow(10.0, &out);  // Strictly below 10.
  EXPECT_EQ(out, std::vector<int>{2});
  q.PopBelow(25.0, &out);
  EXPECT_EQ(out, (std::vector<int>{2, 1, 3}));  // Ascending threshold order.
  EXPECT_TRUE(q.empty());
}

TEST(QueueEquivalenceTest, MonotonePopSequencesAgreeWithinRounding) {
  // Under a monotone P schedule, every item the heap pops by P must have
  // been popped by the bucket queue no later than 2*P (rounding halves the
  // effective threshold at worst).
  Rng rng(17);
  BucketThresholdQueue<int> bucket;
  HeapThresholdQueue<int> heap;
  std::vector<double> thresholds;
  for (int i = 0; i < 500; ++i) {
    const double t = std::exp(rng.Uniform(0.0, 12.0));
    thresholds.push_back(t);
    bucket.Push(t, i);
    heap.Push(t, i);
  }
  double p = 1.0;
  std::vector<int> bucket_popped, heap_popped;
  for (int step = 0; step < 40; ++step) {
    p *= 1.5;
    bucket.PopBelow(p, &bucket_popped);
    heap.PopBelow(p, &heap_popped);
    // Heap-popped items have exact threshold < p, so their rounded
    // thresholds are < p too: the bucket queue must have popped them.
    for (int id : heap_popped) {
      EXPECT_NE(std::find(bucket_popped.begin(), bucket_popped.end(), id),
                bucket_popped.end())
          << "item " << id << " threshold " << thresholds[static_cast<size_t>(id)]
          << " p " << p;
    }
    // Conversely the bucket queue pops at most 2x early.
    for (int id : bucket_popped) {
      EXPECT_LT(thresholds[static_cast<size_t>(id)], 2.0 * p);
    }
  }
}

}  // namespace
}  // namespace streamhull
