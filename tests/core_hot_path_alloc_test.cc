// Pins the de-allocated ingestion hot path: once an AdaptiveHull is warmed
// up (scratch buffers sized, arena at steady state), offering further
// points — interior rejections *and* ordinary sample displacements — must
// perform zero heap allocations per point. This is what keeps the parallel
// runtime's speedup from disappearing into allocator contention: with 8
// workers ingesting concurrently, a single malloc per point serializes on
// the allocator's locks.
//
// The counter instruments this binary's global operator new/delete. Only
// the delta across the measured region matters, so gtest's own allocations
// do not interfere; the override is per-binary, so no other suite is
// affected.

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/adaptive_hull.h"
#include "core/hull_engine.h"
#include "stream/generators.h"

namespace {

std::atomic<uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace streamhull {
namespace {

AdaptiveHullOptions Opts(uint32_t r) {
  AdaptiveHullOptions o;
  o.r = r;
  return o;
}

// Allocations performed by `fn`.
template <typename Fn>
uint64_t CountAllocations(Fn&& fn) {
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(HotPathAllocTest, InteriorPointsViaInsertBatchAllocateNothing) {
  AdaptiveHull hull(Opts(64));
  // Warm up: ring points build the summary, a first interior batch sizes
  // every scratch buffer and the prefilter cache.
  CircleGenerator ring(1, 256);
  const auto ring_pts = ring.Take(2000);
  hull.InsertBatch(ring_pts);
  DiskGenerator interior(2, 0.4);
  hull.InsertBatch(interior.Take(1000));

  // Steady state: deep-interior points are pure prefilter rejections.
  const auto probe = interior.Take(50000);
  const uint64_t before_rejects = hull.stats().batch_prefilter_rejections;
  const uint64_t allocs = CountAllocations([&] {
    hull.InsertBatch(std::span<const Point2>(probe));
  });
  EXPECT_GT(hull.stats().batch_prefilter_rejections, before_rejects);
  EXPECT_EQ(allocs, 0u)
      << "interior-heavy batched ingestion must not touch the allocator";
  EXPECT_TRUE(hull.CheckConsistency().ok());
}

TEST(HotPathAllocTest, SteadyStateMixedIngestionAllocatesNothing) {
  // Harsher: 10% of points land on the ring, displacing samples and
  // churning the refinement trees — the accept path, not just the
  // prefilter. After warm-up on the same distribution, accepted points
  // must run entirely out of the reused scratch buffers, the node arena's
  // free list, and the skip list's preallocated pool... or this fails.
  AdaptiveHullOptions o = Opts(32);
  auto mixed = [](uint64_t seed, size_t n) {
    Rng rng(seed);
    std::vector<Point2> pts;
    pts.reserve(n);
    const double kTwoPi = 6.283185307179586476925286766559;
    for (size_t i = 0; i < n; ++i) {
      const double a = rng.Uniform(0, kTwoPi);
      const double rad =
          rng.NextDouble() < 0.1 ? 0.98 + 0.02 * rng.NextDouble()
                                 : 0.5 * rng.NextDouble();
      pts.push_back({rad * std::cos(a), rad * std::sin(a)});
    }
    return pts;
  };
  AdaptiveHull hull(o);
  hull.InsertBatch(mixed(1, 30000));  // Warm-up reaches steady state.

  const auto probe = mixed(2, 30000);
  const uint64_t discarded_before = hull.stats().points_discarded;
  const uint64_t allocs =
      CountAllocations([&] { hull.InsertBatch(probe); });
  // Rejected points allocate nothing; the rare accepted point may still
  // allocate O(1) node-based-container nodes (samples_/slack_ map entries,
  // skip-list vertices) when it displaces structure. The bound is
  // therefore per *accepted* point plus a small constant — if any per-
  // offered-point allocation (the old ComputeWinningSet/ApplyWin vectors)
  // sneaks back in, the left side jumps by ~30000 and this fails loudly.
  const uint64_t accepted =
      probe.size() - (hull.stats().points_discarded - discarded_before);
  EXPECT_LE(allocs, 8 * accepted + 64)
      << "per-offered-point allocations are back (accepted=" << accepted
      << ")";
  EXPECT_LT(allocs, probe.size() / 10)
      << "allocation volume no longer amortizes over the batch";
  EXPECT_TRUE(hull.CheckConsistency().ok());
}

TEST(HotPathAllocTest, ReserveIsIdempotentAndPreSizes) {
  AdaptiveHull hull(Opts(64));
  hull.Reserve(100000);
  const uint64_t again = CountAllocations([&] { hull.Reserve(100000); });
  EXPECT_EQ(again, 0u) << "Reserve must be idempotent once capacities exist";
}

}  // namespace
}  // namespace streamhull
