// Tests for the multi-stream extensions: StreamGroup (named summaries,
// pairwise monitoring with transition events) and RegionPartitionedHull
// (§8's a-priori cluster partition).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "multi/region_hull.h"
#include "multi/stream_group.h"
#include "stream/generators.h"

namespace streamhull {
namespace {

AdaptiveHullOptions Opts(uint32_t r = 16) {
  AdaptiveHullOptions o;
  o.r = r;
  return o;
}

TEST(StreamGroupTest, StreamLifecycle) {
  StreamGroup group(Opts());
  EXPECT_TRUE(group.AddStream("a").ok());
  EXPECT_TRUE(group.AddStream("b").ok());
  EXPECT_FALSE(group.AddStream("a").ok());  // Duplicate.
  EXPECT_FALSE(group.AddStream("").ok());   // Empty name.
  EXPECT_EQ(group.StreamNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(group.Insert("a", {1, 2}).ok());
  EXPECT_FALSE(group.Insert("zzz", {1, 2}).ok());
  ASSERT_NE(group.Hull("a"), nullptr);
  EXPECT_EQ(group.Hull("a")->num_points(), 1u);
  EXPECT_EQ(group.Hull("zzz"), nullptr);
}

TEST(StreamGroupTest, PerStreamEngineSelection) {
  StreamGroup group(Opts());
  ASSERT_TRUE(group.AddStream("adaptive").ok());  // Group default.
  ASSERT_TRUE(group.AddStream("uniform", EngineKind::kUniform).ok());
  ASSERT_TRUE(group.AddStream("static", EngineKind::kStaticAdaptive).ok());
  EXPECT_EQ(group.Hull("adaptive")->kind(), EngineKind::kAdaptive);
  EXPECT_EQ(group.Hull("uniform")->kind(), EngineKind::kUniform);
  EXPECT_EQ(group.Hull("static")->kind(), EngineKind::kStaticAdaptive);
  DiskGenerator gen(1);
  const auto points = gen.Take(500);
  for (const std::string name : {"adaptive", "uniform", "static"}) {
    ASSERT_TRUE(group.InsertBatch(name, points).ok());
    EXPECT_EQ(group.Hull(name)->num_points(), 500u);
    EXPECT_TRUE(group.Hull(name)->CheckConsistency().ok()) << name;
  }
  PairReport report;
  ASSERT_TRUE(group.Report("adaptive", "uniform", &report).ok());
  EXPECT_FALSE(report.separable);  // Same distribution.
}

TEST(StreamGroupTest, InsertBatchMatchesInsert) {
  StreamGroup batched(Opts());
  StreamGroup incremental(Opts());
  ASSERT_TRUE(batched.AddStream("s").ok());
  ASSERT_TRUE(incremental.AddStream("s").ok());
  EllipseGenerator gen(5, 8.0, 0.4);
  const auto points = gen.Take(1000);
  ASSERT_TRUE(batched.InsertBatch("s", points).ok());
  for (const Point2& p : points) {
    ASSERT_TRUE(incremental.Insert("s", p).ok());
  }
  EXPECT_FALSE(batched.InsertBatch("zzz", points).ok());
  const ConvexPolygon pa = batched.Hull("s")->Polygon();
  const ConvexPolygon pb = incremental.Hull("s")->Polygon();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_TRUE(pa[i] == pb[i]);
}

TEST(StreamGroupTest, ReportRequiresDataAndKnownNames) {
  StreamGroup group(Opts());
  ASSERT_TRUE(group.AddStream("a").ok());
  ASSERT_TRUE(group.AddStream("b").ok());
  PairReport report;
  EXPECT_FALSE(group.Report("a", "zzz", &report).ok());
  EXPECT_FALSE(group.Report("a", "b", &report).ok());  // Both empty.
  ASSERT_TRUE(group.Insert("a", {0, 0}).ok());
  ASSERT_TRUE(group.Insert("b", {5, 0}).ok());
  ASSERT_TRUE(group.Report("a", "b", &report).ok());
  EXPECT_TRUE(report.separable);
  EXPECT_NEAR(report.distance, 5.0, 1e-12);
}

TEST(StreamGroupTest, ReportRelationships) {
  StreamGroup group(Opts());
  ASSERT_TRUE(group.AddStream("inner").ok());
  ASSERT_TRUE(group.AddStream("outer").ok());
  // Outer: big ring; inner: small blob at the center.
  CircleGenerator ring(1, 128, 10.0);
  DiskGenerator blob(2, 0.5);
  for (int i = 0; i < 128; ++i) ASSERT_TRUE(group.Insert("outer", ring.Next()).ok());
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(group.Insert("inner", blob.Next()).ok());
  PairReport report;
  ASSERT_TRUE(group.Report("inner", "outer", &report).ok());
  EXPECT_FALSE(report.separable);
  EXPECT_TRUE(report.b_contains_a);
  EXPECT_FALSE(report.a_contains_b);
  EXPECT_GT(report.overlap_area, 0.0);
}

TEST(StreamGroupTest, PollEmitsTransitionsOnce) {
  StreamGroup group(Opts());
  ASSERT_TRUE(group.AddStream("a").ok());
  ASSERT_TRUE(group.AddStream("b").ok());
  ASSERT_TRUE(group.WatchPair("a", "b").ok());
  ASSERT_TRUE(group.WatchPair("b", "a").ok());  // Idempotent (same pair).
  EXPECT_FALSE(group.WatchPair("a", "a").ok());
  EXPECT_FALSE(group.WatchPair("a", "zzz").ok());

  // Phase 1: far apart -> no events (initial state is separable).
  DiskGenerator gen_a(3, 1.0, {0, 0});
  DiskGenerator gen_b(4, 1.0, {10, 0});
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(group.Insert("a", gen_a.Next()).ok());
    ASSERT_TRUE(group.Insert("b", gen_b.Next()).ok());
  }
  EXPECT_TRUE(group.Poll().empty());

  // Phase 2: b marches onto a -> exactly one separability-lost event.
  DiskGenerator gen_b2(5, 1.0, {0.5, 0});
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(group.Insert("b", gen_b2.Next()).ok());
  }
  auto events = group.Poll();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, PairEvent::Kind::kSeparabilityLost);
  EXPECT_TRUE(group.Poll().empty());  // No re-report without a transition.

  // Phase 3: b surrounds a -> containment event.
  CircleGenerator ring(6, 64, 30.0);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(group.Insert("b", ring.Next()).ok());
  }
  events = group.Poll();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, PairEvent::Kind::kContainmentStarted);
  EXPECT_EQ(events[0].first, "a");
  EXPECT_EQ(events[0].second, "b");
}

TEST(RegionHullTest, CreateValidation) {
  Status st;
  EXPECT_EQ(RegionPartitionedHull::Create({}, Opts(), &st), nullptr);
  EXPECT_FALSE(st.ok());
  // Degenerate region.
  EXPECT_EQ(RegionPartitionedHull::Create(
                {ConvexPolygon({{0, 0}, {1, 1}})}, Opts(), &st),
            nullptr);
  EXPECT_FALSE(st.ok());
  auto ok = RegionPartitionedHull::Create(
      {ConvexPolygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}})}, Opts(), &st);
  EXPECT_TRUE(st.ok());
  EXPECT_NE(ok, nullptr);
}

TEST(RegionHullTest, RoutesPointsToRegions) {
  Status st;
  auto rp = RegionPartitionedHull::Create(
      {ConvexPolygon({{-10, -10}, {0, -10}, {0, 10}, {-10, 10}}),
       ConvexPolygon({{1, -10}, {10, -10}, {10, 10}, {1, 10}})},
      Opts(), &st);
  ASSERT_TRUE(st.ok());
  rp->Insert({-5, 0});   // Region 0.
  rp->Insert({5, 0});    // Region 1.
  rp->Insert({0.5, 0});  // Gap between regions -> outliers.
  rp->Insert({50, 50});  // Far outside -> outliers.
  EXPECT_EQ(rp->RegionCount(0), 1u);
  EXPECT_EQ(rp->RegionCount(1), 1u);
  EXPECT_EQ(rp->OutlierCount(), 2u);
  EXPECT_EQ(rp->num_points(), 4u);
}

TEST(RegionHullTest, LShapePreservesCavity) {
  // The §8 motivation: an "L"-shaped stream. A single hull hides the cavity;
  // the partitioned shape does not.
  Status st;
  auto rp = RegionPartitionedHull::Create(
      {// Vertical bar of the L.
       ConvexPolygon({{0, 0}, {2, 0}, {2, 10}, {0, 10}}),
       // Horizontal bar.
       ConvexPolygon({{2, 0}, {10, 0}, {10, 2}, {2, 2}})},
      Opts(), &st);
  ASSERT_TRUE(st.ok());
  Rng rng(7);
  AdaptiveHull single(Opts());
  for (int i = 0; i < 6000; ++i) {
    // Sample uniformly from the L.
    Point2 p;
    if (rng.Bernoulli(0.5)) {
      p = {rng.Uniform(0, 2), rng.Uniform(0, 10)};
    } else {
      p = {rng.Uniform(2, 10), rng.Uniform(0, 2)};
    }
    rp->Insert(p);
    single.Insert(p);
  }
  // The cavity point (7, 7) is inside the single hull's approximation but
  // outside every region hull.
  const Point2 cavity{5, 5};
  EXPECT_TRUE(single.Polygon().Contains(cavity));
  for (const ConvexPolygon& poly : rp->Shape()) {
    EXPECT_FALSE(poly.Contains(cavity));
  }
  // Total shape area ~ area of the L (= 36), far below the single hull's.
  double shape_area = 0;
  for (const ConvexPolygon& poly : rp->Shape()) shape_area += poly.Area();
  EXPECT_NEAR(shape_area, 36.0, 4.0);
  EXPECT_GT(single.Polygon().Area(), 55.0);
  // And the union hull agrees with the single summary's hull (within error).
  EXPECT_NEAR(rp->UnionHull().Area(), single.Polygon().Area(),
              0.1 * single.Polygon().Area());
}

TEST(RegionHullTest, PerRegionSummariesAreConsistent) {
  Status st;
  auto rp = RegionPartitionedHull::Create(
      {ConvexPolygon({{-20, -20}, {0, -20}, {0, 20}, {-20, 20}}),
       ConvexPolygon({{0, -20}, {20, -20}, {20, 20}, {0, 20}})},
      Opts(), &st);
  ASSERT_TRUE(st.ok());
  ClusterGenerator gen(9, 6);
  for (int i = 0; i < 3000; ++i) rp->Insert(gen.Next() * 10.0);
  for (size_t i = 0; i < rp->num_regions(); ++i) {
    EXPECT_TRUE(rp->RegionHull(i).CheckConsistency().ok());
  }
  EXPECT_TRUE(rp->OutlierHull().CheckConsistency().ok());
}

}  // namespace
}  // namespace streamhull
