// Tests for the multi-stream extensions: StreamGroup (named summaries,
// pairwise monitoring with transition events) and RegionPartitionedHull
// (§8's a-priori cluster partition).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "multi/region_hull.h"
#include "multi/stream_group.h"
#include "stream/generators.h"

namespace streamhull {
namespace {

AdaptiveHullOptions Opts(uint32_t r = 16) {
  AdaptiveHullOptions o;
  o.r = r;
  return o;
}

TEST(StreamGroupTest, StreamLifecycle) {
  StreamGroup group(Opts());
  EXPECT_TRUE(group.AddStream("a").ok());
  EXPECT_TRUE(group.AddStream("b").ok());
  EXPECT_FALSE(group.AddStream("a").ok());  // Duplicate.
  EXPECT_FALSE(group.AddStream("").ok());   // Empty name.
  EXPECT_EQ(group.StreamNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(group.Insert("a", {1, 2}).ok());
  EXPECT_FALSE(group.Insert("zzz", {1, 2}).ok());
  ASSERT_NE(group.Hull("a"), nullptr);
  EXPECT_EQ(group.Hull("a")->num_points(), 1u);
  EXPECT_EQ(group.Hull("zzz"), nullptr);
}

TEST(StreamGroupTest, PerStreamEngineSelection) {
  StreamGroup group(Opts());
  ASSERT_TRUE(group.AddStream("adaptive").ok());  // Group default.
  ASSERT_TRUE(group.AddStream("uniform", EngineKind::kUniform).ok());
  ASSERT_TRUE(group.AddStream("static", EngineKind::kStaticAdaptive).ok());
  EXPECT_EQ(group.Hull("adaptive")->kind(), EngineKind::kAdaptive);
  EXPECT_EQ(group.Hull("uniform")->kind(), EngineKind::kUniform);
  EXPECT_EQ(group.Hull("static")->kind(), EngineKind::kStaticAdaptive);
  DiskGenerator gen(1);
  const auto points = gen.Take(500);
  for (const std::string name : {"adaptive", "uniform", "static"}) {
    ASSERT_TRUE(group.InsertBatch(name, points).ok());
    EXPECT_EQ(group.Hull(name)->num_points(), 500u);
    EXPECT_TRUE(group.Hull(name)->CheckConsistency().ok()) << name;
  }
  PairReport report;
  ASSERT_TRUE(group.Report("adaptive", "uniform", &report).ok());
  // Same distribution: even the inner hulls overlap, so inseparability is
  // certified, not merely suspected.
  EXPECT_EQ(report.separable, Certainty::kFalse);
}

TEST(StreamGroupTest, InsertBatchMatchesInsert) {
  StreamGroup batched(Opts());
  StreamGroup incremental(Opts());
  ASSERT_TRUE(batched.AddStream("s").ok());
  ASSERT_TRUE(incremental.AddStream("s").ok());
  EllipseGenerator gen(5, 8.0, 0.4);
  const auto points = gen.Take(1000);
  ASSERT_TRUE(batched.InsertBatch("s", points).ok());
  for (const Point2& p : points) {
    ASSERT_TRUE(incremental.Insert("s", p).ok());
  }
  EXPECT_FALSE(batched.InsertBatch("zzz", points).ok());
  const ConvexPolygon pa = batched.Hull("s")->Polygon();
  const ConvexPolygon pb = incremental.Hull("s")->Polygon();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_TRUE(pa[i] == pb[i]);
}

TEST(StreamGroupTest, ReportRequiresDataAndKnownNames) {
  StreamGroup group(Opts());
  ASSERT_TRUE(group.AddStream("a").ok());
  ASSERT_TRUE(group.AddStream("b").ok());
  PairReport report;
  EXPECT_FALSE(group.Report("a", "zzz", &report).ok());
  EXPECT_FALSE(group.Report("a", "b", &report).ok());  // Both empty.
  ASSERT_TRUE(group.Insert("a", {0, 0}).ok());
  ASSERT_TRUE(group.Insert("b", {5, 0}).ok());
  ASSERT_TRUE(group.Report("a", "b", &report).ok());
  // Single-point summaries are exact: the interval collapses.
  EXPECT_EQ(report.separable, Certainty::kTrue);
  EXPECT_NEAR(report.distance.lo, 5.0, 1e-9);
  EXPECT_NEAR(report.distance.hi, 5.0, 1e-9);
}

TEST(StreamGroupTest, ReportRelationships) {
  StreamGroup group(Opts());
  ASSERT_TRUE(group.AddStream("inner").ok());
  ASSERT_TRUE(group.AddStream("outer").ok());
  // Outer: big ring; inner: small blob at the center.
  CircleGenerator ring(1, 128, 10.0);
  DiskGenerator blob(2, 0.5);
  for (int i = 0; i < 128; ++i) ASSERT_TRUE(group.Insert("outer", ring.Next()).ok());
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(group.Insert("inner", blob.Next()).ok());
  PairReport report;
  ASSERT_TRUE(group.Report("inner", "outer", &report).ok());
  EXPECT_EQ(report.separable, Certainty::kFalse);
  EXPECT_EQ(report.b_contains_a, Certainty::kTrue);
  EXPECT_EQ(report.a_contains_b, Certainty::kFalse);
  EXPECT_GT(report.overlap_area.lo, 0.0);
  EXPECT_GE(report.overlap_area.hi, report.overlap_area.lo);
}

size_t CountKind(const std::vector<PairEvent>& events, PairEvent::Kind kind) {
  size_t n = 0;
  for (const PairEvent& e : events) n += e.kind == kind ? 1 : 0;
  return n;
}

TEST(StreamGroupTest, PollEmitsCertifiedTransitionsOnce) {
  StreamGroup group(Opts());
  ASSERT_TRUE(group.AddStream("a").ok());
  ASSERT_TRUE(group.AddStream("b").ok());
  ASSERT_TRUE(group.WatchPair("a", "b").ok());
  ASSERT_TRUE(group.WatchPair("b", "a").ok());  // Idempotent (same pair).
  EXPECT_FALSE(group.WatchPair("a", "a").ok());
  EXPECT_FALSE(group.WatchPair("a", "zzz").ok());

  // Phase 1: far apart -> no events (initial state is certified separable
  // and uncontained, and the truth matches it).
  DiskGenerator gen_a(3, 1.0, {0, 0});
  DiskGenerator gen_b(4, 1.0, {10, 0});
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(group.Insert("a", gen_a.Next()).ok());
    ASSERT_TRUE(group.Insert("b", gen_b.Next()).ok());
  }
  EXPECT_TRUE(group.Poll().empty());

  // Phase 2: b marches onto a -> exactly one certified separability-lost
  // transition (deep overlap: even the inner hulls intersect).
  DiskGenerator gen_b2(5, 1.0, {0.5, 0});
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(group.Insert("b", gen_b2.Next()).ok());
  }
  auto events = group.Poll();
  EXPECT_EQ(CountKind(events, PairEvent::Kind::kSeparabilityLost), 1u);
  EXPECT_EQ(CountKind(events, PairEvent::Kind::kSeparabilityGained), 0u);
  EXPECT_EQ(CountKind(events, PairEvent::Kind::kContainmentStarted), 0u);
  EXPECT_EQ(CountKind(events, PairEvent::Kind::kContainmentEnded), 0u);
  EXPECT_TRUE(group.Poll().empty());  // No re-report without a transition.

  // Phase 3: b surrounds a -> exactly one certified containment event
  // naming (contained, container) = (a, b).
  CircleGenerator ring(6, 64, 30.0);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(group.Insert("b", ring.Next()).ok());
  }
  events = group.Poll();
  ASSERT_EQ(CountKind(events, PairEvent::Kind::kContainmentStarted), 1u);
  for (const PairEvent& e : events) {
    if (e.kind != PairEvent::Kind::kContainmentStarted) continue;
    EXPECT_EQ(e.first, "a");
    EXPECT_EQ(e.second, "b");
  }
  EXPECT_EQ(CountKind(events, PairEvent::Kind::kSeparabilityLost), 0u);
  EXPECT_EQ(CountKind(events, PairEvent::Kind::kSeparabilityGained), 0u);
  EXPECT_TRUE(group.Poll().empty());
}

// The acceptance property of the tri-state redesign: a pair whose true
// separation sits inside the summaries' uncertainty band must never flap.
// Two streams hug a vertical boundary, strictly separated by a gap orders
// of magnitude below the summary error, with each round's extremes pushed
// right up against it — the kind of adversarial near-boundary stream whose
// raw point values sit arbitrarily close to the threshold. Certified
// polling must emit at most one kCertaintyLost and zero separability
// transitions while every report's distance interval straddles zero.
TEST(StreamGroupTest, NoFlappingInsideUncertaintyBand) {
  StreamGroup group(Opts(8));  // Small r: wide uncertainty band.
  ASSERT_TRUE(group.AddStream("left").ok());
  ASSERT_TRUE(group.AddStream("right").ok());
  ASSERT_TRUE(group.WatchPair("left", "right").ok());

  Rng rng(2004);
  const double kGap = 1e-4;  // True gap; error bound is ~1 at r = 8.
  // Boundary normal at pi/8: midway between two uniform sample directions
  // (multiples of pi/4 at r = 8), where the uncertainty triangles over the
  // boundary-hugging edges are tallest. An axis-aligned boundary would
  // coincide with a sample direction and be summarized exactly.
  const Point2 u = UnitVector(0.39269908169872414);
  const Point2 v = u.PerpCcw();
  size_t transitions = 0;
  size_t certainty_events = 0;
  size_t straddling_polls = 0;
  for (int round = 0; round < 40; ++round) {
    std::vector<Point2> l, r;
    for (int i = 0; i < 50; ++i) {
      l.push_back(u * rng.Uniform(-2.0, -kGap / 2) +
                  v * rng.Uniform(-1.0, 1.0));
      r.push_back(u * rng.Uniform(kGap / 2, 2.0) +
                  v * rng.Uniform(-1.0, 1.0));
    }
    // Pin this round's extremes onto the boundary so the raw inner-hull
    // distance keeps wobbling at the 1e-4 scale instead of settling.
    l.push_back(u * (-kGap / 2) + v * rng.Uniform(-1.0, 1.0));
    r.push_back(u * (kGap / 2) + v * rng.Uniform(-1.0, 1.0));
    ASSERT_TRUE(group.InsertBatch("left", l).ok());
    ASSERT_TRUE(group.InsertBatch("right", r).ok());

    PairReport report;
    ASSERT_TRUE(group.Report("left", "right", &report).ok());
    const bool straddles = report.distance.lo <= 0 && report.distance.hi > 0;
    straddling_polls += straddles ? 1 : 0;
    for (const PairEvent& e : group.Poll()) {
      switch (e.kind) {
        case PairEvent::Kind::kSeparabilityLost:
        case PairEvent::Kind::kSeparabilityGained:
          EXPECT_FALSE(straddles)
              << "round " << round
              << ": transition fired while the interval straddles zero";
          ++transitions;
          break;
        case PairEvent::Kind::kCertaintyLost:
        case PairEvent::Kind::kCertaintyGained:
          if (e.predicate == PairEvent::Predicate::kSeparability) {
            ++certainty_events;
          }
          break;
        default:
          break;
      }
    }
  }
  // The scenario is designed to stay inside the band: the watch reports
  // the band entry once and then stays silent. In particular there is no
  // lost/gained reversal pair.
  EXPECT_GT(straddling_polls, 30u);  // The scenario really is adversarial.
  EXPECT_EQ(transitions, 0u);
  EXPECT_EQ(certainty_events, 1u);
}

TEST(RegionHullTest, CreateValidation) {
  Status st;
  EXPECT_EQ(RegionPartitionedHull::Create({}, Opts(), &st), nullptr);
  EXPECT_FALSE(st.ok());
  // Degenerate region.
  EXPECT_EQ(RegionPartitionedHull::Create(
                {ConvexPolygon({{0, 0}, {1, 1}})}, Opts(), &st),
            nullptr);
  EXPECT_FALSE(st.ok());
  auto ok = RegionPartitionedHull::Create(
      {ConvexPolygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}})}, Opts(), &st);
  EXPECT_TRUE(st.ok());
  EXPECT_NE(ok, nullptr);
}

TEST(RegionHullTest, RoutesPointsToRegions) {
  Status st;
  auto rp = RegionPartitionedHull::Create(
      {ConvexPolygon({{-10, -10}, {0, -10}, {0, 10}, {-10, 10}}),
       ConvexPolygon({{1, -10}, {10, -10}, {10, 10}, {1, 10}})},
      Opts(), &st);
  ASSERT_TRUE(st.ok());
  rp->Insert({-5, 0});   // Region 0.
  rp->Insert({5, 0});    // Region 1.
  rp->Insert({0.5, 0});  // Gap between regions -> outliers.
  rp->Insert({50, 50});  // Far outside -> outliers.
  EXPECT_EQ(rp->RegionCount(0), 1u);
  EXPECT_EQ(rp->RegionCount(1), 1u);
  EXPECT_EQ(rp->OutlierCount(), 2u);
  EXPECT_EQ(rp->num_points(), 4u);
}

TEST(RegionHullTest, LShapePreservesCavity) {
  // The §8 motivation: an "L"-shaped stream. A single hull hides the cavity;
  // the partitioned shape does not.
  Status st;
  auto rp = RegionPartitionedHull::Create(
      {// Vertical bar of the L.
       ConvexPolygon({{0, 0}, {2, 0}, {2, 10}, {0, 10}}),
       // Horizontal bar.
       ConvexPolygon({{2, 0}, {10, 0}, {10, 2}, {2, 2}})},
      Opts(), &st);
  ASSERT_TRUE(st.ok());
  Rng rng(7);
  AdaptiveHull single(Opts());
  for (int i = 0; i < 6000; ++i) {
    // Sample uniformly from the L.
    Point2 p;
    if (rng.Bernoulli(0.5)) {
      p = {rng.Uniform(0, 2), rng.Uniform(0, 10)};
    } else {
      p = {rng.Uniform(2, 10), rng.Uniform(0, 2)};
    }
    rp->Insert(p);
    single.Insert(p);
  }
  // The cavity point (7, 7) is inside the single hull's approximation but
  // outside every region hull.
  const Point2 cavity{5, 5};
  EXPECT_TRUE(single.Polygon().Contains(cavity));
  for (const ConvexPolygon& poly : rp->Shape()) {
    EXPECT_FALSE(poly.Contains(cavity));
  }
  // Total shape area ~ area of the L (= 36), far below the single hull's.
  double shape_area = 0;
  for (const ConvexPolygon& poly : rp->Shape()) shape_area += poly.Area();
  EXPECT_NEAR(shape_area, 36.0, 4.0);
  EXPECT_GT(single.Polygon().Area(), 55.0);
  // And the union hull agrees with the single summary's hull (within error).
  EXPECT_NEAR(rp->UnionHull().Area(), single.Polygon().Area(),
              0.1 * single.Polygon().Area());
}

TEST(RegionHullTest, PerRegionSummariesAreConsistent) {
  Status st;
  auto rp = RegionPartitionedHull::Create(
      {ConvexPolygon({{-20, -20}, {0, -20}, {0, 20}, {-20, 20}}),
       ConvexPolygon({{0, -20}, {20, -20}, {20, 20}, {0, 20}})},
      Opts(), &st);
  ASSERT_TRUE(st.ok());
  ClusterGenerator gen(9, 6);
  for (int i = 0; i < 3000; ++i) rp->Insert(gen.Next() * 10.0);
  for (size_t i = 0; i < rp->num_regions(); ++i) {
    EXPECT_TRUE(rp->RegionHull(i).CheckConsistency().ok());
  }
  EXPECT_TRUE(rp->OutlierHull().CheckConsistency().ok());
}

// ---------------------------------------------------------------------------
// Remote streams: snapshot v2 views in place of live engines.
// ---------------------------------------------------------------------------

TEST(StreamGroupRemoteTest, RemoteStreamLifecycle) {
  StreamGroup group(Opts());
  ASSERT_TRUE(group.AddRemoteStream("remote").ok());
  EXPECT_FALSE(group.AddRemoteStream("remote").ok());  // Duplicate.
  EXPECT_FALSE(group.AddStream("remote").ok());        // Name taken.
  EXPECT_TRUE(group.IsRemote("remote"));
  EXPECT_FALSE(group.IsRemote("zzz"));
  // No engine backs a remote stream, and it accepts no points.
  EXPECT_EQ(group.Hull("remote"), nullptr);
  EXPECT_FALSE(group.Insert("remote", {1, 2}).ok());
  const Point2 pts[] = {{1, 2}};
  EXPECT_FALSE(group.InsertBatch("remote", pts).ok());
  // Updates only apply to remote streams, with valid bytes.
  ASSERT_TRUE(group.AddStream("local").ok());
  EXPECT_FALSE(group.UpdateRemoteStream("local", "whatever").ok());
  EXPECT_FALSE(group.UpdateRemoteStream("remote", "garbage").ok());
  EXPECT_FALSE(group.UpdateRemoteStream("zzz", "garbage").ok());
  // Before the first update the view is empty; Report refuses.
  ASSERT_TRUE(group.Insert("local", {0, 0}).ok());
  PairReport report;
  EXPECT_FALSE(group.Report("remote", "local", &report).ok());
}

TEST(StreamGroupRemoteTest, SinkCertifiesPairsFromDecodedViewsAlone) {
  // Two producers on other "nodes" ship v2; the sink holds decoded views
  // only, plus one local stream, and certifies all pairings.
  EngineOptions opts;
  opts.hull.r = 32;
  auto producer_a = MakeEngine(EngineKind::kAdaptive, opts);
  auto producer_b = MakeEngine(EngineKind::kUniform, opts);
  producer_a->InsertBatch(DiskGenerator(71, 1.0, {0, 0}).Take(2000));
  producer_b->InsertBatch(DiskGenerator(72, 1.0, {8, 0}).Take(2000));

  StreamGroup sink(Opts(32));
  ASSERT_TRUE(sink.AddRemoteStream("a").ok());
  ASSERT_TRUE(sink.AddRemoteStream("b").ok());
  ASSERT_TRUE(sink.AddStream("c").ok());
  ASSERT_TRUE(sink.UpdateRemoteStream("a", producer_a->EncodeView()).ok());
  ASSERT_TRUE(sink.UpdateRemoteStream("b", producer_b->EncodeView()).ok());
  const auto pts_c = DiskGenerator(73, 1.0, {0.2, 0}).Take(2000);
  ASSERT_TRUE(sink.InsertBatch("c", pts_c).ok());

  PairReport ab, ac;
  ASSERT_TRUE(sink.Report("a", "b", &ab).ok());
  EXPECT_EQ(ab.separable, Certainty::kTrue);  // Disks 8 apart.
  EXPECT_GT(ab.distance.lo, 4.0);
  ASSERT_TRUE(sink.Report("a", "c", &ac).ok());
  EXPECT_EQ(ac.separable, Certainty::kFalse);  // Same disk: inners overlap.

  // Watches mix remote and local streams; a remote update moves events.
  ASSERT_TRUE(sink.WatchPair("a", "b").ok());
  (void)sink.Poll();  // Baseline: separable.
  auto producer_b2 = MakeEngine(EngineKind::kAdaptive, opts);
  producer_b2->InsertBatch(DiskGenerator(74, 1.0, {0.3, 0.1}).Take(2000));
  ASSERT_TRUE(sink.UpdateRemoteStream("b", producer_b2->EncodeView()).ok());
  bool lost = false;
  for (const PairEvent& e : sink.Poll()) {
    if (e.kind == PairEvent::Kind::kSeparabilityLost) lost = true;
  }
  EXPECT_TRUE(lost) << "remote view update must drive certified events";
}

TEST(StreamGroupRemoteTest, RemoteStatsDistinguishResyncsFromRejections) {
  EngineOptions opts;
  opts.hull.r = 16;
  auto producer = MakeEngine(EngineKind::kAdaptive, opts);
  producer->InsertBatch(DiskGenerator(91, 1.0, {0, 0}).Take(1000));

  StreamGroup sink(Opts());
  ASSERT_TRUE(sink.AddRemoteStream("r").ok());
  RemoteStreamStats stats;
  ASSERT_TRUE(sink.RemoteStats("r", &stats).ok());
  EXPECT_EQ(stats.full_frames, 0u);
  EXPECT_EQ(stats.held_generation, 0u);

  // A delta arriving before any full frame is a generation gap: a resync
  // request, not a malformed-frame rejection. (The producer establishes
  // its own wire baseline with an encode the sink never receives.)
  (void)producer->EncodeView();
  uint64_t base = producer->num_points();
  producer->InsertBatch(DiskGenerator(92, 1.0, {0, 0}).Take(500));
  std::string delta;
  ASSERT_TRUE(producer->EncodeSummaryDelta(base, &delta).ok());
  EXPECT_EQ(sink.UpdateRemoteStream("r", delta).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(sink.RemoteStats("r", &stats).ok());
  EXPECT_EQ(stats.resyncs_needed, 1u);
  EXPECT_EQ(stats.rejected_frames, 0u);

  // Full frame -> chained delta: both counted, generation tracked.
  ASSERT_TRUE(sink.UpdateRemoteStream("r", producer->EncodeView()).ok());
  base = producer->num_points();
  producer->InsertBatch(DiskGenerator(93, 1.0, {0, 0}).Take(500));
  ASSERT_TRUE(producer->EncodeSummaryDelta(base, &delta).ok());
  ASSERT_TRUE(sink.UpdateRemoteStream("r", delta).ok());
  ASSERT_TRUE(sink.RemoteStats("r", &stats).ok());
  EXPECT_EQ(stats.full_frames, 1u);
  EXPECT_EQ(stats.delta_frames, 1u);
  EXPECT_EQ(stats.held_generation, producer->num_points());

  // Garbage is a rejection, not a resync.
  EXPECT_EQ(sink.UpdateRemoteStream("r", "garbage").code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(sink.RemoteStats("r", &stats).ok());
  EXPECT_EQ(stats.rejected_frames, 1u);
  EXPECT_EQ(stats.resyncs_needed, 1u);
  EXPECT_EQ(stats.held_generation, producer->num_points());  // Unchanged.

  // A delta whose predecessor was lost in transit is again a resync
  // request: the sink holds an older generation than the frame's base.
  base = producer->num_points();
  producer->InsertBatch(DiskGenerator(94, 1.0, {0, 0}).Take(500));
  std::string lost;
  ASSERT_TRUE(producer->EncodeSummaryDelta(base, &lost).ok());
  base = producer->num_points();
  producer->InsertBatch(DiskGenerator(95, 1.0, {0, 0}).Take(500));
  ASSERT_TRUE(producer->EncodeSummaryDelta(base, &delta).ok());
  EXPECT_EQ(sink.UpdateRemoteStream("r", delta).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(sink.RemoteStats("r", &stats).ok());
  EXPECT_EQ(stats.resyncs_needed, 2u);

  // Stats accessors police stream identity like the update path does.
  ASSERT_TRUE(sink.AddStream("local").ok());
  EXPECT_FALSE(sink.RemoteStats("local", &stats).ok());
  EXPECT_FALSE(sink.RemoteStats("zzz", &stats).ok());
}

TEST(StreamGroupRemoteTest, RemoteViewExposesHeldDecodedView) {
  EngineOptions opts;
  opts.hull.r = 16;
  auto producer = MakeEngine(EngineKind::kAdaptive, opts);
  producer->InsertBatch(DiskGenerator(95, 1.0, {2, 3}).Take(1500));

  StreamGroup sink(Opts());
  ASSERT_TRUE(sink.AddRemoteStream("r").ok());
  DecodedSummaryView view;
  // Before the first update there is nothing to expose.
  EXPECT_EQ(sink.RemoteView("r", &view).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(sink.UpdateRemoteStream("r", producer->EncodeView()).ok());
  ASSERT_TRUE(sink.RemoteView("r", &view).ok());
  EXPECT_EQ(view.num_points, producer->num_points());
  EXPECT_FALSE(view.samples.empty());
  // Local and unknown streams are refused.
  ASSERT_TRUE(sink.AddStream("local").ok());
  EXPECT_FALSE(sink.RemoteView("local", &view).ok());
  EXPECT_FALSE(sink.RemoteView("zzz", &view).ok());
}

// ---------------------------------------------------------------------------
// Region-partitioned distribution: per-region v2 emit + merge.
// ---------------------------------------------------------------------------

TEST(RegionHullTest, EmitAndMergeViewsAcrossNodes) {
  const std::vector<ConvexPolygon> partition = {
      ConvexPolygon({{-20, -20}, {0, -20}, {0, 20}, {-20, 20}}),
      ConvexPolygon({{1, -20}, {20, -20}, {20, 20}, {1, 20}})};
  Status st;
  auto node1 = RegionPartitionedHull::Create(partition, Opts(), &st);
  ASSERT_TRUE(st.ok());
  auto node2 = RegionPartitionedHull::Create(partition, Opts(), &st);
  ASSERT_TRUE(st.ok());
  auto sink = RegionPartitionedHull::Create(partition, Opts(), &st);
  ASSERT_TRUE(st.ok());

  DiskGenerator left1(81, 2.0, {-10, 0}), right1(82, 2.0, {10, 0});
  DiskGenerator left2(83, 2.0, {-10, 6});
  for (int i = 0; i < 2000; ++i) {
    node1->Insert(left1.Next());
    node1->Insert(right1.Next());
    node2->Insert(left2.Next());
  }
  node2->Insert({0.5, 0});  // An outlier between the regions.

  // Empty summaries encode to nothing; non-empty ones to v2 messages.
  EXPECT_TRUE(node1->EncodeRegionView(node1->OutlierIndex()).empty());
  for (size_t i = 0; i <= node1->OutlierIndex(); ++i) {
    const std::string wire1 = node1->EncodeRegionView(i);
    const std::string wire2 = node2->EncodeRegionView(i);
    for (const std::string* wire : {&wire1, &wire2}) {
      if (wire->empty()) continue;
      DecodedSummaryView view;
      ASSERT_TRUE(DecodeSummaryView(*wire, &view).ok()) << "region " << i;
      ASSERT_TRUE(sink->MergeDecodedView(i, view).ok()) << "region " << i;
    }
  }

  // Merge validation.
  DecodedSummaryView dummy;
  EXPECT_FALSE(sink->MergeDecodedView(99, dummy).ok());  // Out of range.
  EXPECT_FALSE(sink->MergeDecodedView(0, dummy).ok());   // Empty view.

  // The merged sink covers both nodes' clusters, region by region.
  EXPECT_TRUE(sink->RegionHull(0).Polygon().Contains({-10, 0}));
  EXPECT_TRUE(sink->RegionHull(0).Polygon().Contains({-10, 6}));
  EXPECT_TRUE(sink->RegionHull(1).Polygon().Contains({10, 0}));
  EXPECT_FALSE(sink->RegionHull(1).Polygon().Contains({-10, 0}));
  EXPECT_EQ(sink->OutlierCount(), 1u);
  for (size_t i = 0; i < sink->num_regions(); ++i) {
    EXPECT_TRUE(sink->RegionHull(i).CheckConsistency().ok()) << i;
  }
  // The cavity between the clusters survives the distributed merge: the
  // sink's shape is two polygons, not one blended hull.
  EXPECT_EQ(sink->Shape().size(), 3u);  // Two regions + outlier point.
}

TEST(StreamGroupTest, PollCachesPerStreamGeometryAcrossPairsAndPolls) {
  // Three streams watched in all three pairs: a poll must materialize each
  // stream's sandwich once (3, not 6 per-pair sides), and a second poll
  // over unchanged streams must materialize nothing — the generation-
  // tagged cache serves it. The PairReport a watch would act on is
  // unchanged by the caching (same-state group built fresh as reference).
  StreamGroup cached(Opts());
  StreamGroup reference(Opts());
  for (StreamGroup* g : {&cached, &reference}) {
    ASSERT_TRUE(g->AddStream("a").ok());
    ASSERT_TRUE(g->AddStream("b").ok());
    ASSERT_TRUE(g->AddStream("c").ok());
    DiskGenerator ga(1, 1.0, {0, 0});
    DiskGenerator gb(2, 1.0, {1.2, 0});
    DiskGenerator gc(3, 1.0, {10, 0});
    ASSERT_TRUE(g->InsertBatch("a", ga.Take(300)).ok());
    ASSERT_TRUE(g->InsertBatch("b", gb.Take(300)).ok());
    ASSERT_TRUE(g->InsertBatch("c", gc.Take(300)).ok());
  }
  ASSERT_TRUE(cached.WatchPair("a", "b").ok());
  ASSERT_TRUE(cached.WatchPair("b", "c").ok());
  ASSERT_TRUE(cached.WatchPair("a", "c").ok());

  const uint64_t before = cached.view_materializations();
  (void)cached.Poll();
  EXPECT_EQ(cached.view_materializations() - before, 3u)
      << "one materialization per stream, not per pair side";
  (void)cached.Poll();
  EXPECT_EQ(cached.view_materializations() - before, 3u)
      << "quiescent re-poll must serve the cache";

  // Reports off the cache match a cache-cold group exactly, field by field.
  for (const auto& [x, y] : std::vector<std::pair<std::string, std::string>>{
           {"a", "b"}, {"b", "c"}, {"a", "c"}}) {
    PairReport got, want;
    ASSERT_TRUE(cached.Report(x, y, &got).ok());
    ASSERT_TRUE(reference.Report(x, y, &want).ok());
    EXPECT_EQ(got.distance.lo, want.distance.lo);
    EXPECT_EQ(got.distance.hi, want.distance.hi);
    EXPECT_EQ(got.separable, want.separable);
    EXPECT_EQ(got.overlap_area.lo, want.overlap_area.lo);
    EXPECT_EQ(got.overlap_area.hi, want.overlap_area.hi);
    EXPECT_EQ(got.a_contains_b, want.a_contains_b);
    EXPECT_EQ(got.b_contains_a, want.b_contains_a);
  }

  // Inserting invalidates exactly the touched stream's cache.
  const uint64_t mid = cached.view_materializations();
  ASSERT_TRUE(cached.Insert("a", {0.1, 0.1}).ok());
  (void)cached.Poll();
  EXPECT_EQ(cached.view_materializations() - mid, 1u)
      << "only the mutated stream re-materializes";
}

// ---------------------------------------------------------------------------
// Snapshot v3 delta frames through the multi-stream layers
// ---------------------------------------------------------------------------

TEST(StreamGroupRemoteTest, RemoteStreamRunsOnDeltasAfterOneFullFrame) {
  AdaptiveHull producer(Opts());
  DiskGenerator gen(91);
  producer.InsertBatch(gen.Take(1000));

  StreamGroup sink(Opts());
  ASSERT_TRUE(sink.AddRemoteStream("remote").ok());

  // A delta cannot arrive before any full frame: there is nothing to patch.
  producer.InsertBatch(gen.Take(10));
  (void)producer.EncodeView();  // Establishes the producer-side baseline.
  std::string delta;
  producer.InsertBatch(gen.Take(10));
  ASSERT_TRUE(producer.EncodeSummaryDelta(1010, &delta).ok());
  EXPECT_EQ(sink.UpdateRemoteStream("remote", delta).code(),
            StatusCode::kFailedPrecondition);

  // Full frame, then steady-state deltas; every update invalidates the
  // generation-tagged view cache exactly once.
  ASSERT_TRUE(sink.UpdateRemoteStream("remote", producer.EncodeView()).ok());
  ASSERT_TRUE(sink.AddStream("local").ok());
  ASSERT_TRUE(sink.Insert("local", {10.0, 10.0}).ok());
  ASSERT_TRUE(sink.WatchPair("remote", "local").ok());
  (void)sink.Poll();
  const uint64_t mat0 = sink.view_materializations();

  for (int round = 0; round < 5; ++round) {
    producer.InsertBatch(gen.Take(200));
    std::string frame;
    ASSERT_TRUE(
        producer.EncodeSummaryDelta(producer.num_points() - 200, &frame)
            .ok());
    EXPECT_EQ(SnapshotVersion(frame), 3u);
    ASSERT_TRUE(sink.UpdateRemoteStream("remote", frame).ok());
    (void)sink.Poll();
  }
  EXPECT_EQ(sink.view_materializations(), mat0 + 5)
      << "each applied delta invalidates the cached view exactly once";

  // The patched remote view answers queries exactly like the producer.
  SummaryView remote_view;
  ASSERT_TRUE(sink.View("remote", &remote_view).ok());
  const SummaryView truth(producer.Polygon(), producer.OuterPolygon());
  EXPECT_EQ(CertifiedDiameter(remote_view).value.lo,
            CertifiedDiameter(truth).value.lo);
  EXPECT_EQ(CertifiedDiameter(remote_view).value.hi,
            CertifiedDiameter(truth).value.hi);
}

TEST(StreamGroupRemoteTest, GenerationGapSurfacesAndFullFrameRecovers) {
  AdaptiveHull producer(Opts());
  DiskGenerator gen(92);
  producer.InsertBatch(gen.Take(500));

  StreamGroup sink(Opts());
  ASSERT_TRUE(sink.AddRemoteStream("remote").ok());
  ASSERT_TRUE(sink.UpdateRemoteStream("remote", producer.EncodeView()).ok());

  // This delta is lost in transit; the producer's baseline moves on.
  producer.InsertBatch(gen.Take(100));
  std::string lost;
  ASSERT_TRUE(producer.EncodeSummaryDelta(500, &lost).ok());

  producer.InsertBatch(gen.Take(100));
  std::string next;
  ASSERT_TRUE(producer.EncodeSummaryDelta(600, &next).ok());
  EXPECT_EQ(sink.UpdateRemoteStream("remote", next).code(),
            StatusCode::kFailedPrecondition);

  // The held view survived the failed patch and still serves queries.
  SummaryView view;
  ASSERT_TRUE(sink.View("remote", &view).ok());
  EXPECT_FALSE(view.empty());

  // Resync, after which deltas chain again.
  ASSERT_TRUE(sink.UpdateRemoteStream("remote", producer.EncodeView()).ok());
  producer.InsertBatch(gen.Take(100));
  std::string resumed;
  ASSERT_TRUE(producer.EncodeSummaryDelta(700, &resumed).ok());
  EXPECT_TRUE(sink.UpdateRemoteStream("remote", resumed).ok());
}

TEST(RegionHullTest, DeltaMergeMatchesFullViewMerge) {
  const std::vector<ConvexPolygon> partition = {
      ConvexPolygon({{-20, -20}, {0, -20}, {0, 20}, {-20, 20}}),
      ConvexPolygon({{1, -20}, {20, -20}, {20, 20}, {1, 20}})};
  Status st;
  auto node = RegionPartitionedHull::Create(partition, Opts(), &st);
  ASSERT_TRUE(st.ok());
  auto sink_delta = RegionPartitionedHull::Create(partition, Opts(), &st);
  ASSERT_TRUE(st.ok());
  auto sink_full = RegionPartitionedHull::Create(partition, Opts(), &st);
  ASSERT_TRUE(st.ok());

  DiskGenerator left(93, 2.0, {-10, 0}), right(94, 2.0, {10, 0});
  auto feed = [&](int n) {
    for (int i = 0; i < n; ++i) {
      node->Insert(left.Next());
      node->Insert(right.Next());
    }
  };

  // Round 0: both sinks start from full frames. The delta sink keeps the
  // peer's decoded views to patch; the full sink re-decodes every round.
  feed(500);
  std::vector<DecodedSummaryView> held(node->OutlierIndex() + 1);
  for (size_t i = 0; i < node->num_regions(); ++i) {
    const std::string wire = node->EncodeRegionResync(i);
    ASSERT_FALSE(wire.empty());
    ASSERT_TRUE(DecodeSummaryView(wire, &held[i]).ok());
    ASSERT_TRUE(sink_delta->MergeDecodedView(i, held[i]).ok());
    ASSERT_TRUE(sink_full->MergeDecodedView(i, held[i]).ok());
  }

  for (int round = 1; round <= 5; ++round) {
    feed(200);
    for (size_t i = 0; i < node->num_regions(); ++i) {
      std::string delta;
      ASSERT_TRUE(
          node->EncodeRegionDelta(i, held[i].num_points, &delta).ok())
          << "region " << i << " round " << round;
      ASSERT_TRUE(sink_delta->MergeDecodedDelta(i, delta, &held[i]).ok());
      // The patched view must match a fresh full encode of the region.
      EXPECT_EQ(EncodeSummaryView(held[i]),
                EncodeSummaryView(node->RegionHull(i)));
      ASSERT_TRUE(sink_full->MergeDecodedView(i, held[i]).ok());
    }
  }

  // Both sinks ingested exactly the same point *set* (every sample that
  // ever appeared in a frame — the full sink via whole views, the delta
  // sink via increments), just with different multiplicities and order.
  // Adaptive merging is order-sensitive within its error bound, so the
  // summaries need not be bit-equal; the sandwich guarantee is that each
  // sink's inner polygon lies inside the other's certified outer polygon
  // (both outer polygons contain the common true hull).
  for (size_t i = 0; i < node->num_regions(); ++i) {
    const ConvexPolygon outer_full = sink_full->RegionHull(i).OuterPolygon();
    const ConvexPolygon outer_delta =
        sink_delta->RegionHull(i).OuterPolygon();
    const ConvexPolygon inner_full = sink_full->RegionHull(i).Polygon();
    const ConvexPolygon inner_delta = sink_delta->RegionHull(i).Polygon();
    for (const Point2& v : inner_delta.vertices()) {
      EXPECT_LE(outer_full.DistanceOutside(v), 1e-9) << "region " << i;
    }
    for (const Point2& v : inner_full.vertices()) {
      EXPECT_LE(outer_delta.DistanceOutside(v), 1e-9) << "region " << i;
    }
    EXPECT_TRUE(sink_delta->RegionHull(i).CheckConsistency().ok());
  }

  // Error paths: out-of-range index, empty region, generation gap.
  std::string out;
  EXPECT_EQ(node->EncodeRegionDelta(99, 0, &out).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(node->EncodeRegionDelta(node->OutlierIndex(), 0, &out).code(),
            StatusCode::kFailedPrecondition);  // Catch-all never fed.
  EXPECT_TRUE(node->EncodeRegionResync(node->OutlierIndex()).empty());
  feed(10);
  EXPECT_EQ(node->EncodeRegionDelta(0, 1, &out).code(),
            StatusCode::kFailedPrecondition);  // Stale base generation.
}

}  // namespace
}  // namespace streamhull
