// Tests for the vectorized geometry kernels (geom/kernels.h) and their SoA
// input layout (geom/soa.h): layout construction and padding, the
// conservative-certification contract of CertifyInteriorBatch (adversarial
// near-boundary, degenerate, huge/tiny-scale, and non-finite inputs),
// bitwise scalar-vs-dispatched agreement on every lane and tail size, the
// coarse sub-polygon soundness argument, and the runtime dispatch controls.

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/kernels.h"
#include "geom/point.h"
#include "geom/soa.h"

namespace streamhull {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

struct ScopedForcedIsa {
  explicit ScopedForcedIsa(SimdIsa isa) { ForceSimdIsa(isa); }
  ~ScopedForcedIsa() { ClearForcedSimdIsa(); }
};

std::vector<Point2> RegularPolygon(size_t n, double radius = 1.0,
                                   Point2 center = {0, 0}) {
  std::vector<Point2> verts;
  verts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = kTwoPi * static_cast<double>(i) / static_cast<double>(n);
    verts.push_back(
        {center.x + radius * std::cos(a), center.y + radius * std::sin(a)});
  }
  return verts;
}

PolygonEdgeSoA BuildSoA(const std::vector<Point2>& verts, size_t stride = 1) {
  double scale = 0;
  for (const Point2& v : verts) {
    scale = std::max({scale, std::abs(v.x), std::abs(v.y)});
  }
  PolygonEdgeSoA soa;
  soa.Build(verts, stride, scale);
  return soa;
}

uint8_t CertifyOne(const PolygonEdgeSoA& poly, Point2 p) {
  uint8_t out = 0xAA;
  CertifyInteriorBatch(poly, &p, 1, &out);
  return out;
}

TEST(PolygonEdgeSoATest, BuildStoresPerEdgeConstants) {
  const auto verts = RegularPolygon(5);
  const PolygonEdgeSoA soa = BuildSoA(verts);
  ASSERT_EQ(soa.num_edges, 5u);
  EXPECT_TRUE(soa.CanCertify());
  EXPECT_EQ(soa.padded_edges() % kSoaLaneWidth, 0u);
  EXPECT_GE(soa.padded_edges(), soa.num_edges);
  for (size_t e = 0; e < soa.num_edges; ++e) {
    const Point2 a = verts[e];
    const Point2 b = verts[(e + 1) % verts.size()];
    EXPECT_EQ(soa.ax[e], a.x);
    EXPECT_EQ(soa.ay[e], a.y);
    EXPECT_EQ(soa.dx[e], b.x - a.x);
    EXPECT_EQ(soa.dy[e], b.y - a.y);
    EXPECT_EQ(soa.sabs[e], std::abs(b.x - a.x) + std::abs(b.y - a.y));
  }
  // Padding repeats edge 0 (a real test, harmless under conjunction).
  for (size_t e = soa.num_edges; e < soa.padded_edges(); ++e) {
    EXPECT_EQ(soa.ax[e], soa.ax[0]);
    EXPECT_EQ(soa.dx[e], soa.dx[0]);
    EXPECT_EQ(soa.sabs[e], soa.sabs[0]);
  }
}

TEST(PolygonEdgeSoATest, StrideBuildsCoarseSubPolygon) {
  const auto verts = RegularPolygon(48);
  const PolygonEdgeSoA coarse = BuildSoA(verts, /*stride=*/3);
  ASSERT_EQ(coarse.num_edges, 16u);
  for (size_t e = 0; e < coarse.num_edges; ++e) {
    EXPECT_EQ(coarse.ax[e], verts[3 * e].x);
    EXPECT_EQ(coarse.ay[e], verts[3 * e].y);
  }
}

TEST(PolygonEdgeSoATest, ClearAndRebuildReusesCapacity) {
  PolygonEdgeSoA soa = BuildSoA(RegularPolygon(16));
  soa.Reserve(16);
  const size_t cap = soa.ax.capacity();
  for (int round = 0; round < 8; ++round) {
    double scale = 1.0;
    soa.Build(RegularPolygon(16, 1.0 + round), 1, scale);
  }
  EXPECT_EQ(soa.ax.capacity(), cap);
  EXPECT_EQ(soa.num_edges, 16u);
}

TEST(PolygonEdgeSoATest, FewerThanThreeEdgesCannotCertify) {
  std::vector<Point2> two = {{0, 0}, {1, 0}};
  const PolygonEdgeSoA soa = BuildSoA(two);
  EXPECT_FALSE(soa.CanCertify());
  uint8_t out[3] = {7, 7, 7};
  Point2 pts[3] = {{0.5, 0.0}, {0, 0}, {100, 100}};
  CertifyInteriorBatch(soa, pts, 3, out);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 0);
}

TEST(CertifyInteriorBatchTest, InteriorCertifiedExteriorNot) {
  const PolygonEdgeSoA soa = BuildSoA(RegularPolygon(16));
  EXPECT_EQ(CertifyOne(soa, {0, 0}), 1);
  EXPECT_EQ(CertifyOne(soa, {0.5, 0.3}), 1);
  EXPECT_EQ(CertifyOne(soa, {2, 0}), 0);
  EXPECT_EQ(CertifyOne(soa, {0, -5}), 0);
  // A vertex and an edge midpoint are boundary, never certified.
  EXPECT_EQ(CertifyOne(soa, soa.padded_edges() > 0
                                ? Point2{soa.ax[0], soa.ay[0]}
                                : Point2{1, 0}),
            0);
}

// The certificate is a *margin* test: points within ~1e-12 of the boundary
// must not be certified, from either side.
TEST(CertifyInteriorBatchTest, NearBoundaryPointsAreNeverCertified) {
  const PolygonEdgeSoA soa = BuildSoA(RegularPolygon(16));
  // Probe along each edge's perpendicular-foot direction, where the
  // boundary sits at the inscribed-circle radius cos(pi/16): a +-1e-13
  // relative radial nudge lands inside the ~1e-12 relative margin band of
  // that edge, from either side, and must never certify.
  for (int k = 0; k < 16; ++k) {
    const double a = kTwoPi / 32.0 + k * kTwoPi / 16.0;
    const double rad = std::cos(kTwoPi / 32.0);
    for (double eps : {0.0, 1e-13, -1e-13, 5e-14}) {
      const Point2 p{rad * (1.0 + eps) * std::cos(a),
                     rad * (1.0 + eps) * std::sin(a)};
      EXPECT_EQ(CertifyOne(soa, p), 0)
          << "k=" << k << " eps=" << eps << " must fail the margin test";
    }
  }
  // A clearance of 1e-9 is far outside the margin band: the same
  // directions certify again, pinning the band's width from below.
  for (int k = 0; k < 16; ++k) {
    const double a = kTwoPi / 32.0 + k * kTwoPi / 16.0;
    const double rad = std::cos(kTwoPi / 32.0) * (1.0 - 1e-9);
    EXPECT_EQ(CertifyOne(soa, {rad * std::cos(a), rad * std::sin(a)}), 1)
        << "k=" << k;
  }
}

TEST(CertifyInteriorBatchTest, NonFiniteInputsAreNeverCertified) {
  const PolygonEdgeSoA soa = BuildSoA(RegularPolygon(8));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const Point2 bad[] = {{nan, 0}, {0, nan},   {nan, nan},
                        {inf, 0}, {0, -inf},  {inf, -inf}};
  for (const Point2& p : bad) {
    EXPECT_EQ(CertifyOne(soa, p), 0) << "(" << p.x << ", " << p.y << ")";
  }
}

// Huge coordinates overflow the determinant terms to inf/NaN; the kernel
// must degrade to "not certified", never to a bogus 1.
TEST(CertifyInteriorBatchTest, OverflowingScalesAreConservative) {
  const PolygonEdgeSoA huge = BuildSoA(RegularPolygon(8, 1e300));
  EXPECT_EQ(CertifyOne(huge, {0, 0}), 0);       // Margin overflows to inf.
  EXPECT_EQ(CertifyOne(huge, {1e299, 0}), 0);
  EXPECT_EQ(CertifyOne(huge, {2e300, 2e300}), 0);
}

// Tiny (but not underflowing) scales keep full precision: a comfortably
// interior point of a 1e-150-radius polygon still certifies, and
// near-boundary still does not.
TEST(CertifyInteriorBatchTest, TinyScalesStillCertify) {
  const PolygonEdgeSoA tiny = BuildSoA(RegularPolygon(8, 1e-150));
  EXPECT_EQ(CertifyOne(tiny, {0, 0}), 1);
  EXPECT_EQ(CertifyOne(tiny, {1e-151, 1e-151}), 1);
  EXPECT_EQ(CertifyOne(tiny, {1e-150, 0}), 0);
  EXPECT_EQ(CertifyOne(tiny, {5, 5}), 0);
}

// Scales whose determinant terms underflow to zero certify nothing: the
// strict > against the (also underflowed) margin cannot fire. Conservative,
// never wrong.
TEST(CertifyInteriorBatchTest, UnderflowingScalesAreConservative) {
  const PolygonEdgeSoA sub = BuildSoA(RegularPolygon(8, 1e-300));
  EXPECT_EQ(CertifyOne(sub, {0, 0}), 0);
  EXPECT_EQ(CertifyOne(sub, {1e-301, 0}), 0);
}

// Moderately large but non-overflowing coordinates certify normally.
TEST(CertifyInteriorBatchTest, LargeScalesCertifyInteriors) {
  const PolygonEdgeSoA big = BuildSoA(RegularPolygon(8, 1e150));
  EXPECT_EQ(CertifyOne(big, {0, 0}), 1);
  EXPECT_EQ(CertifyOne(big, {1e149, -1e149}), 1);
  EXPECT_EQ(CertifyOne(big, {1e151, 0}), 0);
}

// A point the *coarse* polygon certifies must be strictly interior to the
// *full* polygon — the containment argument the ingestion prefilter rests
// on (a vertex subset of a convex polygon spans a contained polygon).
TEST(CertifyInteriorBatchTest, CoarseCertificationImpliesFullInteriority) {
  const auto verts = RegularPolygon(48);
  const PolygonEdgeSoA coarse = BuildSoA(verts, /*stride=*/3);
  Rng rng(4242);
  size_t certified = 0;
  for (int i = 0; i < 4000; ++i) {
    const double a = rng.Uniform(0, kTwoPi);
    const double rad = 1.05 * rng.NextDouble();
    const Point2 p{rad * std::cos(a), rad * std::sin(a)};
    if (CertifyOne(coarse, p) == 0) continue;
    ++certified;
    for (size_t e = 0; e < verts.size(); ++e) {
      const Point2 va = verts[e];
      const Point2 vb = verts[(e + 1) % verts.size()];
      ASSERT_GT(Orient(va, vb, p), 0)
          << "coarse-certified point outside full edge " << e;
    }
  }
  EXPECT_GT(certified, 1000u) << "workload should exercise the certifier";
}

// Bitwise agreement between the dispatched ISA and the forced-scalar path
// on every lane count and tail size (1..67 covers all block remainders).
TEST(CertifyInteriorBatchTest, DispatchedMatchesScalarBitwise) {
  if (ActiveSimdIsa() == SimdIsa::kScalar) {
    GTEST_SKIP() << "scalar dispatch build/CPU: nothing to cross-check";
  }
  const PolygonEdgeSoA soa = BuildSoA(RegularPolygon(13));  // Odd count.
  Rng rng(20260808);
  for (size_t n = 1; n <= 67; ++n) {
    std::vector<Point2> pts;
    pts.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const double a = rng.Uniform(0, kTwoPi);
      // Mix deep-interior, near-boundary, and exterior points.
      const double rad = rng.NextDouble() * 1.2;
      pts.push_back({rad * std::cos(a), rad * std::sin(a)});
    }
    std::vector<uint8_t> got(n, 0xEE), want(n, 0xDD);
    CertifyInteriorBatch(soa, pts.data(), n, got.data());
    {
      ScopedForcedIsa forced(SimdIsa::kScalar);
      CertifyInteriorBatch(soa, pts.data(), n, want.data());
    }
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SignedOffsetsTest, MatchesScalarExpressionExactly) {
  Rng rng(777);
  const size_t n = 129;  // Exercises every vector tail.
  std::vector<double> xs(n), ys(n), got(n), want(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.Uniform(-1e6, 1e6);
    ys[i] = rng.Uniform(-1e6, 1e6);
  }
  const double ax = 0.125, ay = -3.5, nx = 0.6, ny = -0.8;
  SignedOffsets(xs.data(), ys.data(), n, ax, ay, nx, ny, got.data());
  for (size_t i = 0; i < n; ++i) {
    const double t1 = (xs[i] - ax) * nx;
    const double t2 = (ys[i] - ay) * ny;
    want[i] = t1 + t2;
  }
  for (size_t i = 0; i < n; ++i) {
    // Bitwise: the kernel contract is the exact IEEE expression tree.
    ASSERT_EQ(got[i], want[i]) << i;
  }
  if (ActiveSimdIsa() != SimdIsa::kScalar) {
    std::vector<double> scalar(n);
    ScopedForcedIsa forced(SimdIsa::kScalar);
    SignedOffsets(xs.data(), ys.data(), n, ax, ay, nx, ny, scalar.data());
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(got[i], scalar[i]) << i;
  }
}

TEST(SimdDispatchTest, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(SimdIsaAvailable(SimdIsa::kScalar));
  EXPECT_STREQ(SimdIsaName(SimdIsa::kScalar), "scalar");
  EXPECT_STREQ(SimdIsaName(SimdIsa::kAvx2), "avx2");
  EXPECT_STREQ(SimdIsaName(SimdIsa::kNeon), "neon");
}

TEST(SimdDispatchTest, ActiveIsaIsAvailable) {
  EXPECT_TRUE(SimdIsaAvailable(ActiveSimdIsa()));
#if defined(STREAMHULL_DISABLE_SIMD)
  EXPECT_EQ(ActiveSimdIsa(), SimdIsa::kScalar)
      << "compile-time disable must pin scalar dispatch";
#endif
}

TEST(SimdDispatchTest, ForceRoundTrips) {
  const SimdIsa native = ActiveSimdIsa();
  {
    ScopedForcedIsa forced(SimdIsa::kScalar);
    EXPECT_EQ(ActiveSimdIsa(), SimdIsa::kScalar);
  }
  EXPECT_EQ(ActiveSimdIsa(), native);
  // Forcing the already-active ISA is a no-op round trip too.
  {
    ScopedForcedIsa forced(native);
    EXPECT_EQ(ActiveSimdIsa(), native);
  }
  EXPECT_EQ(ActiveSimdIsa(), native);
}

}  // namespace
}  // namespace streamhull
