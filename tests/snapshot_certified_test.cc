// Differential tests for the distributed certified-query path: a sink that
// holds nothing but a decoded snapshot v2 message must answer certified
// diameter / width / separation with intervals containing the brute-force
// values computed on the true hull of the producer's full stream — and its
// outer polygon must never be looser than what a v1 receiver can achieve
// by recomputing the per-level Lemma 5.3 offsets from the v1 header.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/snapshot.h"
#include "geom/convex_hull.h"
#include "queries/certified.h"
#include "stream/generators.h"

namespace streamhull {
namespace {

std::unique_ptr<PointGenerator> MakeWorkload(int kind) {
  switch (kind) {
    case 0: return std::make_unique<DiskGenerator>(51);
    case 1: return std::make_unique<SquareGenerator>(52, 0.21);
    case 2: return std::make_unique<EllipseGenerator>(53, 16.0, 0.13);
    case 3: return std::make_unique<CircleGenerator>(54, 97);
    case 4: return std::make_unique<ClusterGenerator>(55, 5);
    case 5: return std::make_unique<DriftWalkGenerator>(56);
    default: return std::make_unique<SpiralGenerator>(57, 1e-3);
  }
}
constexpr int kNumWorkloads = 7;

// (workload, r): every engine kind is swept inside the body so the brute
// ground truth is computed once per stream.
class SnapshotSinkDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(SnapshotSinkDifferentialTest, DecodedViewsCertifyBruteTruth) {
  const auto [workload, r] = GetParam();
  const auto pts = MakeWorkload(workload)->Take(1500);
  const ConvexPolygon truth(ConvexHullOf(pts));
  const double true_diameter = DiameterBrute(truth).value;
  const double true_width = WidthBrute(truth).value;
  const double eps = 1e-7 * (1.0 + true_diameter);

  for (EngineKind kind : AllEngineKinds()) {
    EngineOptions o;
    o.hull.r = r;
    auto engine = MakeEngine(kind, o);
    engine->InsertBatch(pts);
    const std::string ctx =
        std::string(EngineKindName(kind)) + " r=" + std::to_string(r);

    // Producer -> wire -> sink; the sink sees only the decoded view.
    DecodedSummaryView decoded;
    ASSERT_TRUE(DecodeSummaryView(engine->EncodeView(), &decoded).ok())
        << ctx;
    const SummaryView view = decoded.View();

    // Root guarantee off the wire: inner subset of truth subset of outer.
    for (size_t i = 0; i < view.inner().size(); ++i) {
      ASSERT_LE(truth.DistanceOutside(view.inner()[i]), eps) << ctx;
    }
    for (size_t i = 0; i < truth.size(); ++i) {
      ASSERT_LE(view.outer().DistanceOutside(truth[i]), eps) << ctx;
    }

    const CertifiedScalar diam = CertifiedDiameter(view);
    EXPECT_LE(diam.value.lo, true_diameter + eps) << ctx;
    EXPECT_GE(diam.value.hi, true_diameter - eps) << ctx;

    const CertifiedScalar width = CertifiedWidth(view);
    EXPECT_LE(width.value.lo, true_width + eps) << ctx;
    EXPECT_GE(width.value.hi, true_width - eps) << ctx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SnapshotSinkDifferentialTest,
    ::testing::Combine(::testing::Range(0, kNumWorkloads),
                       ::testing::Values(8u, 32u, 128u)));

// Pairwise: two producers ship v2; the sink certifies their separation
// against the brute truth of both streams.
TEST(SnapshotSinkDifferentialTest, PairwiseSeparationOffTheWire) {
  for (uint32_t r : {8u, 32u, 128u}) {
    DiskGenerator gen_a(61, 1.0, {0, 0});
    DiskGenerator gen_b(62, 1.0, {3.0, 0.4});
    const auto pts_a = gen_a.Take(1500), pts_b = gen_b.Take(1500);
    const double true_distance =
        Separation(ConvexPolygon(ConvexHullOf(pts_a)),
                   ConvexPolygon(ConvexHullOf(pts_b)))
            .distance;
    for (EngineKind kind : AllEngineKinds()) {
      EngineOptions o;
      o.hull.r = r;
      auto ea = MakeEngine(kind, o);
      auto eb = MakeEngine(kind, o);
      ea->InsertBatch(pts_a);
      eb->InsertBatch(pts_b);
      DecodedSummaryView da, db;
      ASSERT_TRUE(DecodeSummaryView(ea->EncodeView(), &da).ok());
      ASSERT_TRUE(DecodeSummaryView(eb->EncodeView(), &db).ok());
      const std::string ctx =
          std::string(EngineKindName(kind)) + " r=" + std::to_string(r);
      const double eps = 1e-7 * (1.0 + true_distance);
      const CertifiedSeparationResult sep =
          CertifiedSeparation(da.View(), db.View());
      EXPECT_LE(sep.distance.lo, true_distance + eps) << ctx;
      EXPECT_GE(sep.distance.hi, true_distance - eps) << ctx;
      if (sep.separable == Certainty::kTrue) {
        EXPECT_GT(true_distance, 0.0) << ctx;
      }
    }
  }
}

// The acceptance bar for shipping slacks explicitly: the v2 outer polygon
// is never looser than what a v1 receiver reconstructs by restoring the
// samples and re-deriving the per-level Lemma 5.3 offsets from the v1
// header (perimeter, r). Compared by support values over a direction
// sweep, which orders convex sets.
TEST(SnapshotSinkDifferentialTest, V2OuterNeverLooserThanV1Recompute) {
  for (int workload = 0; workload < kNumWorkloads; ++workload) {
    for (uint32_t r : {8u, 32u}) {
      AdaptiveHullOptions o;
      o.r = r;
      AdaptiveHull h(o);
      auto gen = MakeWorkload(workload);
      for (int i = 0; i < 4000; ++i) h.Insert(gen->Next());
      const std::string ctx =
          gen->Name() + " r=" + std::to_string(r);

      HullSnapshot v1;
      ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(h), &v1).ok()) << ctx;
      std::vector<double> v1_slacks;
      v1_slacks.reserve(v1.samples.size());
      for (const HullSample& s : v1.samples) {
        v1_slacks.push_back(
            InvariantOffset(v1.perimeter, v1.r, s.direction.level()));
      }
      const ConvexPolygon v1_outer =
          SupportIntersection(v1.samples, v1_slacks);

      DecodedSummaryView v2;
      ASSERT_TRUE(DecodeSummaryView(h.EncodeView(), &v2).ok()) << ctx;
      const ConvexPolygon v2_outer = v2.Outer();

      ASSERT_FALSE(v2_outer.empty()) << ctx;
      const double scale = 1.0 + DiameterBrute(v1_outer).value;
      for (int k = 0; k < 64; ++k) {
        const Point2 u = UnitVector(k * (6.283185307179586 / 64.0) + 0.017);
        EXPECT_LE(v2_outer.Support(u), v1_outer.Support(u) + 1e-9 * scale)
            << ctx << " probe " << k;
      }
      EXPECT_LE(v2_outer.Area(), v1_outer.Area() + 1e-9 * scale * scale)
          << ctx;
    }
  }
}

}  // namespace
}  // namespace streamhull
