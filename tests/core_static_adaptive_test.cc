// Tests for offline adaptive sampling (§4): Lemma 4.2 (at most r+1 added
// directions), Lemma 4.3 (uncertainty heights O(D/r^2)), and agreement in
// spirit with the streaming structure.

#include "core/static_adaptive.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/convex_hull.h"
#include "queries/queries.h"
#include "stream/generators.h"

namespace streamhull {
namespace {

std::vector<Point2> MakeWorkload(int kind, uint64_t seed, int n) {
  std::unique_ptr<PointGenerator> gen;
  switch (kind % 4) {
    case 0: gen = std::make_unique<DiskGenerator>(seed); break;
    case 1: gen = std::make_unique<SquareGenerator>(seed, 0.21); break;
    case 2: gen = std::make_unique<EllipseGenerator>(seed, 16.0, 0.13); break;
    default: gen = std::make_unique<ClusterGenerator>(seed, 4); break;
  }
  return gen->Take(static_cast<size_t>(n));
}

TEST(StaticUniformTest, SamplesAreExtrema) {
  const auto pts = MakeWorkload(0, 1, 500);
  const auto s = BuildStaticUniformSample(pts, 16);
  EXPECT_EQ(s.samples.size(), 16u);
  for (const HullSample& hs : s.samples) {
    const Point2 u = hs.direction.ToVector();
    double best = -1e300;
    for (const Point2& p : pts) best = std::max(best, Dot(p, u));
    EXPECT_NEAR(Dot(hs.point, u), best, 1e-12);
  }
}

TEST(StaticUniformTest, SinglePoint) {
  const auto s = BuildStaticUniformSample({{2, 3}}, 16);
  EXPECT_EQ(s.samples.size(), 16u);
  EXPECT_DOUBLE_EQ(s.uniform_perimeter, 0.0);
  EXPECT_TRUE(s.triangles.empty());
  EXPECT_EQ(s.Polygon().size(), 1u);
}

class StaticAdaptiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(StaticAdaptiveSweep, Lemma42RefinementBudget) {
  const int kind = GetParam();
  const auto pts = MakeWorkload(kind, static_cast<uint64_t>(kind) + 7, 800);
  for (uint32_t r : {8u, 16u, 32u, 64u}) {
    const auto s = BuildStaticAdaptiveSample(pts, r);
    // Lemma 4.2: at most r+1 adaptive refinements.
    EXPECT_LE(s.refinements, r + 1) << "kind " << kind << " r " << r;
    EXPECT_EQ(s.samples.size(), static_cast<size_t>(r) + s.refinements);
  }
}

TEST_P(StaticAdaptiveSweep, Lemma43ErrorBound) {
  const int kind = GetParam();
  const auto pts = MakeWorkload(kind, static_cast<uint64_t>(kind) + 31, 800);
  const double d =
      Diameter(ConvexPolygon(ConvexHullOf(pts))).value;
  if (d <= 0) return;
  for (uint32_t r : {16u, 32u, 64u}) {
    const auto s = BuildStaticAdaptiveSample(pts, r);
    double max_h = 0;
    for (const UncertaintyTriangle& t : s.triangles) {
      max_h = std::max(max_h, t.height);
    }
    // Lemma 4.3 constant: heights are O(D/r^2); 16*pi covers the worst
    // constant in the paper's derivation.
    const double bound =
        16.0 * 3.14159265358979323846 * d / (static_cast<double>(r) * r);
    EXPECT_LE(max_h, bound) << "kind " << kind << " r " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, StaticAdaptiveSweep,
                         ::testing::Range(0, 8));

TEST(StaticAdaptiveTest, QuadraticallyBetterThanUniformOnSkinnyEllipse) {
  EllipseGenerator gen(5, 16.0, 0.13);
  const auto pts = gen.Take(20000);
  const uint32_t r = 16;
  const auto uniform = BuildStaticUniformSample(pts, 2 * r);
  const auto adaptive = BuildStaticAdaptiveSample(pts, r);
  auto max_height = [](const StaticAdaptiveSample& s) {
    double m = 0;
    for (const auto& t : s.triangles) m = std::max(m, t.height);
    return m;
  };
  // Same or smaller sample budget, materially better worst-case bound.
  EXPECT_LE(adaptive.samples.size(), 2 * static_cast<size_t>(r) + 1);
  EXPECT_LT(max_height(adaptive), 0.5 * max_height(uniform));
}

TEST(StaticAdaptiveTest, AllSamplesOnTrueHullBoundary) {
  const auto pts = MakeWorkload(2, 77, 1000);
  const ConvexPolygon truth(ConvexHullOf(pts));
  const auto s = BuildStaticAdaptiveSample(pts, 16);
  for (const HullSample& hs : s.samples) {
    EXPECT_TRUE(truth.ContainsBrute(hs.point));
  }
}

TEST(StaticAdaptiveTest, DegenerateCollinearInput) {
  std::vector<Point2> pts;
  for (int i = 0; i <= 100; ++i) pts.push_back({static_cast<double>(i), 0.0});
  const auto s = BuildStaticAdaptiveSample(pts, 16);
  EXPECT_LE(s.refinements, 17u);
  const ConvexPolygon poly = s.Polygon();
  EXPECT_TRUE(poly.Contains({0, 0}));
  EXPECT_TRUE(poly.Contains({100, 0}));
}

TEST(StaticAdaptiveTest, TreeHeightCapLimitsLevels) {
  const auto pts = MakeWorkload(2, 91, 500);
  const auto s = BuildStaticAdaptiveSample(pts, 16, /*max_tree_height=*/1);
  for (const HullSample& hs : s.samples) {
    EXPECT_LE(hs.direction.level(), 1u);
  }
}

AdaptiveHullOptions EngineOpts(uint32_t r = 16) {
  AdaptiveHullOptions o;
  o.r = r;
  return o;
}

// The explicit-seal contract: InsertBatch seals, Insert leaves the engine
// unsealed, and const accessors report identical values either way — the
// seal only moves where the rebuild cost is paid, never what is observed.
TEST(StaticAdaptiveHullTest, SealedAndUnsealedAccessorsAgree) {
  StaticAdaptiveHull sealed_hull(EngineOpts());
  StaticAdaptiveHull unsealed_hull(EngineOpts());
  const auto pts = MakeWorkload(1, 3, 700);
  sealed_hull.InsertBatch(pts);  // Seals on return.
  for (const Point2& p : pts) unsealed_hull.Insert(p);

  EXPECT_TRUE(sealed_hull.sealed());
  EXPECT_FALSE(unsealed_hull.sealed());

  const ConvexPolygon pa = sealed_hull.Polygon();
  const ConvexPolygon pb = unsealed_hull.Polygon();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_TRUE(pa[i] == pb[i]);
  const auto sa = sealed_hull.Samples();
  const auto sb = unsealed_hull.Samples();
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_TRUE(sa[i].direction == sb[i].direction);
    EXPECT_TRUE(sa[i].point == sb[i].point);
  }
  EXPECT_DOUBLE_EQ(sealed_hull.ErrorBound(), unsealed_hull.ErrorBound());
  EXPECT_EQ(sealed_hull.Triangles().size(), unsealed_hull.Triangles().size());
  EXPECT_TRUE(unsealed_hull.CheckConsistency().ok());

  // Sealing the unsealed engine converges the two states.
  unsealed_hull.Seal();
  EXPECT_TRUE(unsealed_hull.sealed());
  EXPECT_EQ(unsealed_hull.stats().directions_refined,
            sealed_hull.stats().directions_refined);
}

TEST(StaticAdaptiveHullTest, InsertUnsealsAndSealIsIdempotent) {
  StaticAdaptiveHull hull(EngineOpts());
  const auto pts = MakeWorkload(0, 9, 300);
  hull.InsertBatch(pts);
  EXPECT_TRUE(hull.sealed());
  const ConvexPolygon before = hull.Polygon();

  hull.Insert({100.0, 100.0});
  EXPECT_FALSE(hull.sealed());
  // Unsealed const accessors see the new point immediately.
  EXPECT_TRUE(hull.Polygon().Contains({100.0, 100.0}));

  hull.Seal();
  EXPECT_TRUE(hull.sealed());
  hull.Seal();  // Idempotent.
  EXPECT_TRUE(hull.sealed());
  EXPECT_TRUE(hull.Polygon().Contains({100.0, 100.0}));
  EXPECT_TRUE(hull.Polygon().Contains(before.VertexCentroid()));
  // Sample() hands out a reference into the sealed cache.
  EXPECT_EQ(hull.Sample().Polygon().size(), hull.Polygon().size());
}

}  // namespace
}  // namespace streamhull
