// Tests for the query layer (§6): diameter/width calipers vs brute force,
// directional extent, separation (sweep vs GJK), separability certificates,
// containment, convex intersection, smallest enclosing circle.

#include "queries/queries.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/convex_hull.h"

namespace streamhull {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

ConvexPolygon RandomHull(Rng& rng, int n, Point2 center = {0, 0},
                         double scale = 1.0) {
  std::vector<Point2> pts;
  for (int i = 0; i < n; ++i) {
    const double a = rng.Uniform(0, kTwoPi);
    const double r = scale * (0.2 + rng.NextDouble());
    pts.push_back(center + Point2{r * std::cos(a), r * std::sin(a)});
  }
  return ConvexPolygon(ConvexHullOf(pts));
}

// --- Diameter ---

TEST(DiameterTest, Square) {
  const ConvexPolygon sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_NEAR(Diameter(sq).value, 2 * std::sqrt(2.0), 1e-12);
}

TEST(DiameterTest, Degenerate) {
  EXPECT_DOUBLE_EQ(Diameter(ConvexPolygon()).value, 0.0);
  EXPECT_DOUBLE_EQ(Diameter(ConvexPolygon({{1, 1}})).value, 0.0);
  EXPECT_DOUBLE_EQ(Diameter(ConvexPolygon({{0, 0}, {3, 4}})).value, 5.0);
}

class DiameterDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DiameterDifferentialTest, CalipersMatchBrute) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 22695477u + 3);
  const ConvexPolygon poly = RandomHull(rng, 20 + GetParam() * 5);
  if (poly.size() < 3) return;
  EXPECT_NEAR(Diameter(poly).value, DiameterBrute(poly).value, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Random, DiameterDifferentialTest,
                         ::testing::Range(0, 80));

// --- Width ---

TEST(WidthTest, RectangleWidthIsShortSide) {
  const ConvexPolygon rect({{0, 0}, {10, 0}, {10, 2}, {0, 2}});
  EXPECT_NEAR(Width(rect).value, 2.0, 1e-12);
}

TEST(WidthTest, Degenerate) {
  EXPECT_DOUBLE_EQ(Width(ConvexPolygon({{0, 0}, {5, 5}})).value, 0.0);
  EXPECT_DOUBLE_EQ(Width(ConvexPolygon({{3, 3}})).value, 0.0);
}

class WidthDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(WidthDifferentialTest, CalipersMatchBrute) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 134775813u + 19);
  const ConvexPolygon poly = RandomHull(rng, 25 + GetParam() * 3);
  if (poly.size() < 3) return;
  EXPECT_NEAR(Width(poly).value, WidthBrute(poly).value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, WidthDifferentialTest,
                         ::testing::Range(0, 80));

// --- Extent ---

TEST(ExtentTest, SquareAlongAxes) {
  const ConvexPolygon sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_NEAR(DirectionalExtent(sq, {1, 0}), 2.0, 1e-12);
  EXPECT_NEAR(DirectionalExtent(sq, {0, 1}), 2.0, 1e-12);
  EXPECT_NEAR(DirectionalExtent(sq, {3, 0}), 2.0, 1e-12);  // Normalized.
  EXPECT_NEAR(DirectionalExtent(sq, {1, 1}), 2 * std::sqrt(2.0), 1e-12);
}

TEST(ExtentTest, WidthIsMinExtentDiameterIsMaxExtent) {
  Rng rng(77);
  const ConvexPolygon poly = RandomHull(rng, 60);
  double min_e = 1e300, max_e = 0;
  for (int k = 0; k < 720; ++k) {
    const double e = DirectionalExtent(poly, UnitVector(kTwoPi * k / 720));
    min_e = std::min(min_e, e);
    max_e = std::max(max_e, e);
  }
  EXPECT_NEAR(min_e, Width(poly).value, 0.01 * Width(poly).value + 1e-9);
  EXPECT_NEAR(max_e, Diameter(poly).value, 0.01 * Diameter(poly).value);
}

// --- Separation ---

TEST(SeparationTest, DisjointSquares) {
  const ConvexPolygon a({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  const ConvexPolygon b({{3, 0}, {4, 0}, {4, 1}, {3, 1}});
  const auto s = Separation(a, b);
  EXPECT_TRUE(s.separated);
  EXPECT_NEAR(s.distance, 2.0, 1e-12);
  EXPECT_NEAR(Distance(s.a, s.b), s.distance, 1e-12);
}

TEST(SeparationTest, OverlappingSquares) {
  const ConvexPolygon a({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const ConvexPolygon b({{1, 1}, {3, 1}, {3, 3}, {1, 3}});
  const auto s = Separation(a, b);
  EXPECT_FALSE(s.separated);
  EXPECT_DOUBLE_EQ(s.distance, 0.0);
}

TEST(SeparationTest, NestedSquares) {
  const ConvexPolygon outer({{-5, -5}, {5, -5}, {5, 5}, {-5, 5}});
  const ConvexPolygon inner({{-1, -1}, {1, -1}, {1, 1}, {-1, 1}});
  EXPECT_FALSE(Separation(outer, inner).separated);
  EXPECT_FALSE(Separation(inner, outer).separated);
}

TEST(SeparationTest, TouchingSquaresHaveZeroDistance) {
  const ConvexPolygon a({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  const ConvexPolygon b({{1, 0}, {2, 0}, {2, 1}, {1, 1}});
  const auto s = Separation(a, b);
  EXPECT_DOUBLE_EQ(s.distance, 0.0);
  EXPECT_FALSE(s.separated);
}

class SeparationDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SeparationDifferentialTest, MinkowskiMatchesSweep) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 69069u + 5);
  const double gap = rng.Uniform(-1.0, 4.0);  // Negative -> likely overlap.
  const ConvexPolygon a = RandomHull(rng, 30, {0, 0});
  const ConvexPolygon b = RandomHull(rng, 30, {2.4 + gap, 0});
  if (a.size() < 3 || b.size() < 3) return;
  const auto exact = Separation(a, b);
  const auto mink = SeparationMinkowski(a, b);
  EXPECT_EQ(exact.separated, mink.separated) << "case " << GetParam();
  EXPECT_NEAR(exact.distance, mink.distance,
              1e-6 * std::max(1.0, exact.distance))
      << "case " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Random, SeparationDifferentialTest,
                         ::testing::Range(0, 120));

TEST(SeparabilityTest, CertificateIsVerifiable) {
  Rng rng(11);
  for (int t = 0; t < 50; ++t) {
    const double off = rng.Uniform(2.5, 6.0);
    const ConvexPolygon a = RandomHull(rng, 25, {0, 0});
    const ConvexPolygon b = RandomHull(rng, 25, {off, 0});
    if (a.size() < 3 || b.size() < 3) continue;
    const auto cert = LinearSeparability(a, b);
    ASSERT_TRUE(cert.separable);
    // All of a on one side, all of b on the other.
    const Point2 n = cert.line_dir.PerpCw();
    double max_a = -1e300, min_b = 1e300;
    for (size_t i = 0; i < a.size(); ++i) {
      max_a = std::max(max_a, Dot(a[i] - cert.line_point, n));
    }
    for (size_t i = 0; i < b.size(); ++i) {
      min_b = std::min(min_b, Dot(b[i] - cert.line_point, n));
    }
    const bool a_below_b = max_a <= 1e-9 && min_b >= -1e-9;
    const bool b_below_a = min_b <= 1e-9 && max_a >= -1e-9;
    EXPECT_TRUE(a_below_b || b_below_a) << max_a << " " << min_b;
  }
}

TEST(SeparabilityTest, InseparableWitnessInBothHulls) {
  const ConvexPolygon a({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  const ConvexPolygon b({{2, 2}, {6, 2}, {6, 6}, {2, 6}});
  const auto cert = LinearSeparability(a, b);
  ASSERT_FALSE(cert.separable);
  EXPECT_TRUE(a.Contains(cert.witness));
  EXPECT_TRUE(b.Contains(cert.witness));
}

// --- Containment ---

TEST(ContainmentTest, Basics) {
  const ConvexPolygon outer({{-5, -5}, {5, -5}, {5, 5}, {-5, 5}});
  const ConvexPolygon inner({{-1, 0}, {1, 0}, {0, 1}});
  EXPECT_TRUE(HullContains(outer, inner));
  EXPECT_FALSE(HullContains(inner, outer));
  EXPECT_TRUE(HullContains(outer, outer));  // Closed containment.
  EXPECT_TRUE(HullContains(outer, ConvexPolygon()));
  EXPECT_FALSE(HullContains(ConvexPolygon(), inner));
}

// --- Intersection / overlap ---

TEST(IntersectTest, OverlappingSquares) {
  const ConvexPolygon a({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const ConvexPolygon b({{1, 1}, {3, 1}, {3, 3}, {1, 3}});
  const ConvexPolygon x = IntersectConvex(a, b);
  EXPECT_NEAR(x.Area(), 1.0, 1e-12);
  EXPECT_NEAR(OverlapArea(a, b), 1.0, 1e-12);
}

TEST(IntersectTest, DisjointGivesEmpty) {
  const ConvexPolygon a({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  const ConvexPolygon b({{5, 5}, {6, 5}, {6, 6}, {5, 6}});
  EXPECT_DOUBLE_EQ(OverlapArea(a, b), 0.0);
}

TEST(IntersectTest, NestedGivesInner) {
  const ConvexPolygon outer({{-5, -5}, {5, -5}, {5, 5}, {-5, 5}});
  const ConvexPolygon inner({{-1, -1}, {1, -1}, {1, 1}, {-1, 1}});
  EXPECT_NEAR(OverlapArea(outer, inner), inner.Area(), 1e-12);
  EXPECT_NEAR(OverlapArea(inner, outer), inner.Area(), 1e-12);
}

TEST(IntersectTest, AreaBoundsAndSymmetry) {
  Rng rng(13);
  for (int t = 0; t < 60; ++t) {
    const ConvexPolygon a = RandomHull(rng, 20, {0, 0});
    const ConvexPolygon b =
        RandomHull(rng, 20, {rng.Uniform(-1.5, 1.5), rng.Uniform(-1.5, 1.5)});
    if (a.size() < 3 || b.size() < 3) continue;
    const double ab = OverlapArea(a, b);
    const double ba = OverlapArea(b, a);
    EXPECT_NEAR(ab, ba, 1e-9 * std::max(1.0, ab));
    EXPECT_LE(ab, std::min(a.Area(), b.Area()) + 1e-9);
    EXPECT_GE(ab, -1e-12);
  }
}

// --- Oriented bounding box ---

TEST(BoundingBoxTest, AxisAlignedRectangle) {
  const ConvexPolygon rect({{0, 0}, {4, 0}, {4, 2}, {0, 2}});
  const OrientedBox box = MinAreaBoundingBox(rect);
  EXPECT_NEAR(box.Area(), 8.0, 1e-9);
  EXPECT_NEAR(box.center.x, 2.0, 1e-9);
  EXPECT_NEAR(box.center.y, 1.0, 1e-9);
}

TEST(BoundingBoxTest, RotatedRectangleRecoversItsOwnBox) {
  std::vector<Point2> corners{{0, 0}, {4, 0}, {4, 2}, {0, 2}};
  for (Point2& c : corners) c = Rotate(c, 0.7);
  const OrientedBox box = MinAreaBoundingBox(ConvexPolygon(ConvexHullOf(corners)));
  EXPECT_NEAR(box.Area(), 8.0, 1e-9);
}

TEST(BoundingBoxTest, Degenerate) {
  EXPECT_DOUBLE_EQ(MinAreaBoundingBox(ConvexPolygon()).Area(), 0.0);
  EXPECT_DOUBLE_EQ(MinAreaBoundingBox(ConvexPolygon({{3, 4}})).Area(), 0.0);
  const OrientedBox seg = MinAreaBoundingBox(ConvexPolygon({{0, 0}, {3, 4}}));
  EXPECT_NEAR(seg.Area(), 0.0, 1e-12);
  EXPECT_NEAR(seg.extent_u, 5.0, 1e-12);  // Box flush with the segment.
}

class BoundingBoxDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundingBoxDifferentialTest, FastMatchesBrute) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 48271u + 23);
  const ConvexPolygon poly = RandomHull(rng, 40 + GetParam());
  if (poly.size() < 3) return;
  const OrientedBox fast = MinAreaBoundingBox(poly);
  const OrientedBox brute = MinAreaBoundingBoxBrute(poly);
  EXPECT_NEAR(fast.Area(), brute.Area(), 1e-9 * std::max(1.0, brute.Area()));
  // The box must actually contain every vertex.
  for (size_t i = 0; i < poly.size(); ++i) {
    const Point2 d = poly[i] - fast.center;
    EXPECT_LE(std::abs(Dot(d, fast.axis)), fast.extent_u / 2 + 1e-9);
    EXPECT_LE(std::abs(Dot(d, fast.axis.PerpCcw())), fast.extent_v / 2 + 1e-9);
  }
  // Optimality sanity: no sampled rotation beats it.
  for (int k = 0; k < 90; ++k) {
    const Point2 u = UnitVector(kTwoPi * k / 180.0);
    double umax = -1e300, umin = 1e300, vmax = -1e300, vmin = 1e300;
    for (size_t i = 0; i < poly.size(); ++i) {
      umax = std::max(umax, Dot(poly[i], u));
      umin = std::min(umin, Dot(poly[i], u));
      vmax = std::max(vmax, Dot(poly[i], u.PerpCcw()));
      vmin = std::min(vmin, Dot(poly[i], u.PerpCcw()));
    }
    EXPECT_LE(fast.Area(), (umax - umin) * (vmax - vmin) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, BoundingBoxDifferentialTest,
                         ::testing::Range(0, 40));

// --- Hausdorff distance ---

TEST(HausdorffTest, IdenticalPolygonsAreAtDistanceZero) {
  const ConvexPolygon sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_DOUBLE_EQ(HausdorffDistance(sq, sq), 0.0);
}

TEST(HausdorffTest, NestedSquares) {
  const ConvexPolygon outer({{-2, -2}, {2, -2}, {2, 2}, {-2, 2}});
  const ConvexPolygon inner({{-1, -1}, {1, -1}, {1, 1}, {-1, 1}});
  // Farthest point of outer from inner: a corner, distance sqrt(2).
  EXPECT_NEAR(HausdorffDistance(outer, inner), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(HausdorffDistance(inner, outer), std::sqrt(2.0), 1e-12);  // Symmetric.
}

TEST(HausdorffTest, DisjointTranslates) {
  const ConvexPolygon a({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  const ConvexPolygon b({{5, 0}, {6, 0}, {6, 1}, {5, 1}});
  EXPECT_NEAR(HausdorffDistance(a, b), 5.0, 1e-12);
}

TEST(HausdorffTest, TriangleInequalityOnRandomHulls) {
  Rng rng(91);
  for (int t = 0; t < 30; ++t) {
    const ConvexPolygon a = RandomHull(rng, 20, {0, 0});
    const ConvexPolygon b = RandomHull(rng, 20, {rng.Uniform(-1, 1), 0});
    const ConvexPolygon c = RandomHull(rng, 20, {0, rng.Uniform(-1, 1)});
    if (a.size() < 3 || b.size() < 3 || c.size() < 3) continue;
    EXPECT_LE(HausdorffDistance(a, c),
              HausdorffDistance(a, b) + HausdorffDistance(b, c) + 1e-9);
  }
}

// --- Smallest enclosing circle ---

TEST(EnclosingCircleTest, Square) {
  const ConvexPolygon sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const Circle c = SmallestEnclosingCircle(sq);
  EXPECT_NEAR(c.center.x, 1.0, 1e-9);
  EXPECT_NEAR(c.center.y, 1.0, 1e-9);
  EXPECT_NEAR(c.radius, std::sqrt(2.0), 1e-9);
}

TEST(EnclosingCircleTest, ObtuseTriangleUsesLongestSide) {
  // For an obtuse triangle the circle is the diameter circle of the longest
  // side, not the circumcircle.
  const ConvexPolygon tri({{0, 0}, {10, 0}, {5, 1}});
  const Circle c = SmallestEnclosingCircle(tri);
  EXPECT_NEAR(c.radius, 5.0, 1e-9);
}

TEST(EnclosingCircleTest, EnclosesAllAndIsTight) {
  Rng rng(29);
  for (int t = 0; t < 40; ++t) {
    const ConvexPolygon poly = RandomHull(rng, 40);
    if (poly.empty()) continue;
    const Circle c = SmallestEnclosingCircle(poly);
    double farthest = 0;
    for (size_t i = 0; i < poly.size(); ++i) {
      farthest = std::max(farthest, Distance(c.center, poly[i]));
    }
    EXPECT_LE(farthest, c.radius * (1 + 1e-9) + 1e-9);
    // Tight: radius can't beat half the diameter.
    EXPECT_GE(c.radius, Diameter(poly).value / 2 - 1e-9);
  }
}

TEST(FarthestVertexTest, Basics) {
  const ConvexPolygon sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const auto f = FarthestVertex(sq, {0, 0});
  EXPECT_EQ(f.b, Point2(2, 2));
  EXPECT_NEAR(f.value, 2 * std::sqrt(2.0), 1e-12);
}

}  // namespace
}  // namespace streamhull
