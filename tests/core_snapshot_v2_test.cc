// Snapshot wire-format compatibility tests: pinned golden byte strings for
// v1 and v2 (the layouts specified in DESIGN.md, "Wire format"), lossless
// v2 round-trips for every engine kind and r, validation of truncated and
// corrupted input (always a Status, never UB — the suite runs under ASan
// in CI), and cross-version behavior.

#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/snapshot.h"
#include "core/static_adaptive.h"
#include "queries/certified.h"
#include "stream/generators.h"

namespace streamhull {
namespace {

EngineOptions Opts(uint32_t r) {
  EngineOptions o;
  o.hull.r = r;
  return o;
}

// ---------------------------------------------------------------------------
// Golden bytes: an r=8 adaptive summary that has seen exactly one point
// (1.5, -2.25). Pinned against the byte layouts in DESIGN.md; if these
// tests break, the wire format changed and the version must be bumped.
// ---------------------------------------------------------------------------

// v1: 32-byte header + 8 samples * 28 bytes = 256 bytes.
const char kGoldenV1[] =
    "\x31\x4c\x48\x53\x01\x00\x00\x00\x08\x00\x00\x00"
    "\x08\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\xf8\x3f\x00\x00\x00\x00\x00\x00\x02\xc0"
    "\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\xf8\x3f\x00\x00\x00\x00"
    "\x00\x00\x02\xc0\x02\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\xf8\x3f"
    "\x00\x00\x00\x00\x00\x00\x02\xc0\x03\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\xf8\x3f\x00\x00\x00\x00\x00\x00\x02\xc0"
    "\x04\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\xf8\x3f\x00\x00\x00\x00"
    "\x00\x00\x02\xc0\x05\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\xf8\x3f"
    "\x00\x00\x00\x00\x00\x00\x02\xc0\x06\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\xf8\x3f\x00\x00\x00\x00\x00\x00\x02\xc0"
    "\x07\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\xf8\x3f\x00\x00\x00\x00"
    "\x00\x00\x02\xc0";

// v2: 48-byte header + 8 samples * 36 bytes = 336 bytes (kind 1 =
// adaptive, flags 0, error bound 0 because P is still 0).
const char kGoldenV2[] =
    "\x32\x4c\x48\x53\x02\x00\x00\x00\x01\x00\x00\x00"
    "\x08\x00\x00\x00\x08\x00\x00\x00\x00\x00\x00\x00"
    "\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\xf8\x3f\x00\x00\x00\x00"
    "\x00\x00\x02\xc0\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\xf8\x3f\x00\x00\x00\x00"
    "\x00\x00\x02\xc0\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x02\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\xf8\x3f\x00\x00\x00\x00"
    "\x00\x00\x02\xc0\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x03\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\xf8\x3f\x00\x00\x00\x00"
    "\x00\x00\x02\xc0\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x04\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\xf8\x3f\x00\x00\x00\x00"
    "\x00\x00\x02\xc0\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x05\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\xf8\x3f\x00\x00\x00\x00"
    "\x00\x00\x02\xc0\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x06\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\xf8\x3f\x00\x00\x00\x00"
    "\x00\x00\x02\xc0\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x07\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\xf8\x3f\x00\x00\x00\x00"
    "\x00\x00\x02\xc0\x00\x00\x00\x00\x00\x00\x00\x00";

std::string_view GoldenV1() { return {kGoldenV1, sizeof(kGoldenV1) - 1}; }
std::string_view GoldenV2() { return {kGoldenV2, sizeof(kGoldenV2) - 1}; }

std::unique_ptr<AdaptiveHull> GoldenProducer() {
  AdaptiveHullOptions o;
  o.r = 8;
  auto h = std::make_unique<AdaptiveHull>(o);
  h->Insert({1.5, -2.25});
  return h;
}

TEST(SnapshotGoldenTest, V1GoldenBytesDecode) {
  HullSnapshot snap;
  ASSERT_TRUE(DecodeSnapshot(GoldenV1(), &snap).ok());
  EXPECT_EQ(snap.r, 8u);
  EXPECT_EQ(snap.num_points, 1u);
  EXPECT_DOUBLE_EQ(snap.perimeter, 0.0);
  ASSERT_EQ(snap.samples.size(), 8u);
  for (size_t j = 0; j < 8; ++j) {
    EXPECT_EQ(snap.samples[j].direction, Direction::Uniform(j, 8));
    EXPECT_EQ(snap.samples[j].point, (Point2{1.5, -2.25}));
  }
}

TEST(SnapshotGoldenTest, V1EncoderStillEmitsGoldenBytes) {
  EXPECT_EQ(EncodeSnapshot(*GoldenProducer()), GoldenV1());
}

TEST(SnapshotGoldenTest, V2GoldenBytesDecode) {
  DecodedSummaryView view;
  ASSERT_TRUE(DecodeSummaryView(GoldenV2(), &view).ok());
  EXPECT_EQ(view.kind, EngineKind::kAdaptive);
  EXPECT_EQ(view.r, 8u);
  EXPECT_EQ(view.num_points, 1u);
  EXPECT_DOUBLE_EQ(view.perimeter, 0.0);
  EXPECT_DOUBLE_EQ(view.error_bound, 0.0);
  ASSERT_EQ(view.samples.size(), 8u);
  ASSERT_EQ(view.slacks.size(), 8u);
  for (size_t j = 0; j < 8; ++j) {
    EXPECT_EQ(view.samples[j].direction, Direction::Uniform(j, 8));
    EXPECT_DOUBLE_EQ(view.slacks[j], 0.0);
  }
  EXPECT_EQ(view.Inner().size(), 1u);
}

TEST(SnapshotGoldenTest, V2EncoderStillEmitsGoldenBytes) {
  EXPECT_EQ(EncodeSummaryView(*GoldenProducer()), GoldenV2());
}

// ---------------------------------------------------------------------------
// v2 round-trips: lossless for every engine kind and r.
// ---------------------------------------------------------------------------

class SnapshotV2RoundTripTest
    : public ::testing::TestWithParam<std::tuple<EngineKind, uint32_t>> {};

TEST_P(SnapshotV2RoundTripTest, RoundTripIsLossless) {
  const auto [kind, r] = GetParam();
  auto engine = MakeEngine(kind, Opts(r));
  EllipseGenerator gen(41, 16.0, 0.2);
  engine->InsertBatch(gen.Take(3000));
  engine->Seal();

  const std::string wire = engine->EncodeView();
  EXPECT_EQ(SnapshotVersion(wire), 2u);
  DecodedSummaryView view;
  ASSERT_TRUE(DecodeSummaryView(wire, &view).ok());

  // Metadata survives exactly.
  EXPECT_EQ(view.kind, kind);
  EXPECT_EQ(view.r, r);
  EXPECT_EQ(view.num_points, engine->num_points());
  EXPECT_DOUBLE_EQ(view.perimeter, engine->EffectivePerimeter());
  EXPECT_DOUBLE_EQ(view.error_bound, engine->ErrorBound());

  // Samples and slacks survive bit-for-bit (an empty producer slack
  // vector means all-zero and decodes as explicit zeros).
  const auto samples = engine->Samples();
  const auto slacks = engine->SampleSlacks();
  ASSERT_EQ(view.samples.size(), samples.size());
  ASSERT_EQ(view.slacks.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(view.samples[i].direction, samples[i].direction);
    EXPECT_EQ(view.samples[i].point, samples[i].point);
    EXPECT_DOUBLE_EQ(view.slacks[i], slacks.empty() ? 0.0 : slacks[i]);
  }

  // The reconstructed sandwich is vertex-for-vertex the producer's. The
  // inner polygon may start at a different vertex (the producer's vertex
  // list starts at its internal run structure's smallest key, which the
  // wire does not carry), so compare up to cyclic rotation.
  const ConvexPolygon inner = view.Inner(), outer = view.Outer();
  const ConvexPolygon p_inner = engine->Polygon(),
                      p_outer = engine->OuterPolygon();
  ASSERT_EQ(inner.size(), p_inner.size());
  size_t start = p_inner.size();
  for (size_t i = 0; i < p_inner.size(); ++i) {
    if (p_inner[i] == inner[0]) {
      start = i;
      break;
    }
  }
  ASSERT_LT(start, p_inner.size()) << "decoded inner vertex not a producer "
                                      "polygon vertex";
  for (size_t i = 0; i < inner.size(); ++i) {
    EXPECT_EQ(inner[i], p_inner.At(start + i));
  }
  ASSERT_EQ(outer.size(), p_outer.size());
  for (size_t i = 0; i < outer.size(); ++i) {
    EXPECT_EQ(outer[i], p_outer[i]);
  }

  // Re-encoding the decoded view's fields is byte-identical (the format
  // has one canonical serialization).
  const std::string wire2 = engine->EncodeView();
  EXPECT_EQ(wire, wire2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SnapshotV2RoundTripTest,
    ::testing::Combine(::testing::ValuesIn(std::vector<EngineKind>(
                           AllEngineKinds().begin(), AllEngineKinds().end())),
                       ::testing::Values(8u, 32u, 128u)));

// ---------------------------------------------------------------------------
// Validation: every malformed input is rejected with a Status.
// ---------------------------------------------------------------------------

TEST(SnapshotV2ValidationTest, RejectsTruncationsAndCorruption) {
  auto engine = MakeEngine(EngineKind::kAdaptive, Opts(16));
  DiskGenerator gen(42);
  engine->InsertBatch(gen.Take(2000));
  const std::string good = engine->EncodeView();
  DecodedSummaryView view;
  ASSERT_TRUE(DecodeSummaryView(good, &view).ok());

  EXPECT_FALSE(DecodeSummaryView("", &view).ok());
  EXPECT_FALSE(DecodeSummaryView("garbage", &view).ok());
  // Truncations at every prefix length fail cleanly.
  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(
        DecodeSummaryView(std::string_view(good.data(), len), &view).ok())
        << "prefix " << len;
  }
  // Trailing bytes.
  EXPECT_FALSE(DecodeSummaryView(good + "x", &view).ok());

  auto corrupt = [&](size_t offset, char value) {
    std::string bad = good;
    bad[offset] = value;
    return DecodeSummaryView(bad, &view);
  };
  EXPECT_FALSE(corrupt(0, '\x00').ok());   // Magic.
  EXPECT_FALSE(corrupt(4, '\x03').ok());   // Version.
  EXPECT_FALSE(corrupt(8, '\x07').ok());   // Kind code.
  EXPECT_FALSE(corrupt(12, '\x01').ok());  // r = 1 < 8.
  EXPECT_FALSE(corrupt(16, '\x00').ok());  // Sample count 0 (mod 256 trick
                                           // fails decode either way: count
                                           // changes => truncated records).
  EXPECT_FALSE(corrupt(20, '\x01').ok());  // Reserved flags.
  // num_points = 0.
  {
    std::string bad = good;
    std::memset(bad.data() + 24, 0, 8);
    EXPECT_FALSE(DecodeSummaryView(bad, &view).ok());
  }
  // Non-finite perimeter / error bound / slack, negative slack.
  const char kNaN[] = "\x00\x00\x00\x00\x00\x00\xf8\x7f";
  auto patch8 = [&](size_t offset, const char* bytes) {
    std::string bad = good;
    std::memcpy(bad.data() + offset, bytes, 8);
    return DecodeSummaryView(bad, &view);
  };
  EXPECT_FALSE(patch8(32, kNaN).ok());  // Perimeter.
  EXPECT_FALSE(patch8(40, kNaN).ok());  // Error bound.
  const size_t first_slack = 48 + 28;   // First record's slack field.
  EXPECT_FALSE(patch8(first_slack, kNaN).ok());
  const char kMinusOne[] = "\x00\x00\x00\x00\x00\x00\xf0\xbf";
  EXPECT_FALSE(patch8(first_slack, kMinusOne).ok());
  // Non-canonical direction: give the first record (a uniform direction,
  // num 0 level 0) a level of 1 while keeping num even.
  {
    std::string bad = good;
    bad[48 + 8] = '\x01';
    EXPECT_FALSE(DecodeSummaryView(bad, &view).ok());
  }

  // The original still decodes after all that probing.
  EXPECT_TRUE(DecodeSummaryView(good, &view).ok());
}

TEST(SnapshotV2ValidationTest, HugeCountHeaderIsRejectedBySizeCheck) {
  // A crafted header claiming the maximum sample count on a tiny message
  // must be rejected by the up-front size check, not by attempting (and
  // allocating for) the decode. Exercises both versions; hand-builds just
  // the headers with count = 4*2^20 + 4.
  auto put_u32 = [](std::string* s, uint32_t v) {
    s->append(reinterpret_cast<const char*>(&v), 4);
  };
  std::string v2;
  put_u32(&v2, 0x53484c32);
  put_u32(&v2, 2);
  put_u32(&v2, 1);           // Kind: adaptive.
  put_u32(&v2, 1u << 20);    // r.
  put_u32(&v2, (4u << 20) + 4);  // count: maximal.
  put_u32(&v2, 0);           // Flags.
  v2.append(24, '\0');       // num_points=0 would also reject; size first.
  DecodedSummaryView view;
  EXPECT_FALSE(DecodeSummaryView(v2, &view).ok());

  std::string v1;
  put_u32(&v1, 0x53484c31);
  put_u32(&v1, 1);
  put_u32(&v1, 1u << 20);
  put_u32(&v1, (4u << 20) + 4);
  v1.append(16, '\0');
  HullSnapshot snap;
  EXPECT_FALSE(DecodeSnapshot(v1, &snap).ok());
}

TEST(SnapshotV2ValidationTest, EmptyEngineEncodesButIsRejected) {
  auto engine = MakeEngine(EngineKind::kUniform, Opts(8));
  DecodedSummaryView view;
  EXPECT_FALSE(DecodeSummaryView(engine->EncodeView(), &view).ok());
}

// ---------------------------------------------------------------------------
// Cross-version behavior.
// ---------------------------------------------------------------------------

TEST(SnapshotCrossVersionTest, VersionsAreMutuallyExclusive) {
  AdaptiveHullOptions o;
  o.r = 16;
  AdaptiveHull h(o);
  DiskGenerator gen(43);
  for (int i = 0; i < 1000; ++i) h.Insert(gen.Next());

  const std::string v1 = EncodeSnapshot(h);
  const std::string v2 = h.EncodeView();
  EXPECT_EQ(SnapshotVersion(v1), 1u);
  EXPECT_EQ(SnapshotVersion(v2), 2u);
  EXPECT_EQ(SnapshotVersion("zz"), 0u);
  EXPECT_EQ(SnapshotVersion(""), 0u);

  HullSnapshot snap;
  DecodedSummaryView view;
  EXPECT_FALSE(DecodeSnapshot(v2, &snap).ok());
  EXPECT_FALSE(DecodeSummaryView(v1, &view).ok());
  EXPECT_TRUE(DecodeSnapshot(v1, &snap).ok());
  EXPECT_TRUE(DecodeSummaryView(v2, &view).ok());

  // The two versions agree on what they both carry.
  ASSERT_EQ(snap.samples.size(), view.samples.size());
  for (size_t i = 0; i < snap.samples.size(); ++i) {
    EXPECT_EQ(snap.samples[i].direction, view.samples[i].direction);
    EXPECT_EQ(snap.samples[i].point, view.samples[i].point);
  }
  EXPECT_EQ(snap.num_points, view.num_points);
  EXPECT_DOUBLE_EQ(snap.perimeter, view.perimeter);
}

// InvariantOffset is the spec-level mirror of AdaptiveHull::OffsetForLevel:
// a third-party v1 decoder computes its certification slack from it, so the
// two must never drift.
TEST(SnapshotCrossVersionTest, InvariantOffsetMatchesEngineFormula) {
  AdaptiveHullOptions o;
  o.r = 32;
  AdaptiveHull h(o);
  EllipseGenerator gen(44, 8.0, 0.4);
  for (int i = 0; i < 4000; ++i) h.Insert(gen.Next());
  ASSERT_GT(h.perimeter(), 0.0);
  for (uint32_t level = 0; level <= 10; ++level) {
    EXPECT_DOUBLE_EQ(InvariantOffset(h.perimeter(), h.r(), level),
                     h.OffsetForLevel(level))
        << "level " << level;
  }
}

}  // namespace
}  // namespace streamhull
