// Tests for the session wire protocol (server/wire.h): message codec
// round-trips plus the adversarial framing suite — the FrameDecoder parses
// bytes straight off a network socket, so truncation, oversized prefixes,
// garbage, interleaving, and mid-frame disconnects must all surface as
// Status (or clean partial states), never as crashes or hangs.

#include "server/wire.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace streamhull {
namespace {

std::string Frame(const std::string& payload) {
  std::string out;
  const uint32_t n = static_cast<uint32_t>(payload.size());
  out.append(reinterpret_cast<const char*>(&n), sizeof(n));
  out.append(payload);
  return out;
}

// EncodeSessionFrame produces [length prefix][payload]; the payload alone
// is what DecodeSessionMessage parses (the FrameDecoder strips prefixes).
std::string EncodePayload(const SessionMessage& msg) {
  return EncodeSessionFrame(msg).substr(4);
}

// ---------------------------------------------------------------------------
// Message codec round-trips
// ---------------------------------------------------------------------------

TEST(SessionMessageTest, HelloRoundTrip) {
  SessionMessage msg;
  msg.type = SessionMessageType::kHello;
  msg.version = kServerProtocolVersion;
  msg.token = "secret-token";
  SessionMessage decoded;
  ASSERT_TRUE(DecodeSessionMessage(EncodePayload(msg), &decoded).ok());
  EXPECT_EQ(decoded.type, SessionMessageType::kHello);
  EXPECT_EQ(decoded.version, kServerProtocolVersion);
  EXPECT_EQ(decoded.token, "secret-token");
}

TEST(SessionMessageTest, DataRoundTripPreservesBinaryPayload) {
  SessionMessage msg;
  msg.type = SessionMessageType::kData;
  msg.stream = "sensor-7";
  msg.payload.assign(512, '\0');
  Rng rng(7);
  for (char& c : msg.payload) c = static_cast<char>(rng.UniformInt(256));
  SessionMessage decoded;
  ASSERT_TRUE(DecodeSessionMessage(EncodePayload(msg), &decoded).ok());
  EXPECT_EQ(decoded.type, SessionMessageType::kData);
  EXPECT_EQ(decoded.stream, "sensor-7");
  EXPECT_EQ(decoded.payload, msg.payload);
}

TEST(SessionMessageTest, QueryRoundTripCarriesDirectionAndStreams) {
  SessionMessage msg;
  msg.type = SessionMessageType::kQuery;
  msg.query = ServerQueryKind::kSeparation;
  msg.stream = "a";
  msg.stream_b = "b";
  msg.dir_x = 0.25;
  msg.dir_y = -1.5;
  SessionMessage decoded;
  ASSERT_TRUE(DecodeSessionMessage(EncodePayload(msg), &decoded).ok());
  EXPECT_EQ(decoded.query, ServerQueryKind::kSeparation);
  EXPECT_EQ(decoded.stream, "a");
  EXPECT_EQ(decoded.stream_b, "b");
  EXPECT_EQ(decoded.dir_x, 0.25);
  EXPECT_EQ(decoded.dir_y, -1.5);
}

TEST(SessionMessageTest, AckNakCarryGeneration) {
  for (const SessionMessageType type :
       {SessionMessageType::kAck, SessionMessageType::kNak}) {
    SessionMessage msg;
    msg.type = type;
    msg.stream = "s";
    msg.generation = 123456789012345ull;
    SessionMessage decoded;
    ASSERT_TRUE(DecodeSessionMessage(EncodePayload(msg), &decoded).ok());
    EXPECT_EQ(decoded.type, type);
    EXPECT_EQ(decoded.generation, 123456789012345ull);
  }
}

TEST(SessionMessageTest, QueryResultRoundTrip) {
  SessionMessage msg;
  msg.type = SessionMessageType::kQueryResult;
  msg.lo = 1.25;
  msg.hi = 2.5;
  msg.certainty = 2;
  SessionMessage decoded;
  ASSERT_TRUE(DecodeSessionMessage(EncodePayload(msg), &decoded).ok());
  EXPECT_EQ(decoded.lo, 1.25);
  EXPECT_EQ(decoded.hi, 2.5);
  EXPECT_EQ(decoded.certainty, 2);
}

TEST(SessionMessageTest, QueryResultUnknownKindRejected) {
  // A malformed or hostile *server* frame gets the same query-kind range
  // check as client QUERY frames: no out-of-range enum ever reaches a
  // client's SessionMessage.
  SessionMessage msg;
  msg.type = SessionMessageType::kQueryResult;
  std::string payload = EncodePayload(msg);
  // The kind byte immediately follows the type byte.
  for (const char bad : {'\x00', '\x04', '\x7f'}) {
    payload[1] = bad;
    SessionMessage decoded;
    EXPECT_EQ(DecodeSessionMessage(payload, &decoded).code(),
              StatusCode::kInvalidArgument)
        << "kind byte " << static_cast<int>(bad) << " decoded";
  }
}

// ---------------------------------------------------------------------------
// Adversarial payload decoding (bytes already deframed)
// ---------------------------------------------------------------------------

TEST(SessionMessageTest, EmptyPayloadRejected) {
  SessionMessage decoded;
  EXPECT_EQ(DecodeSessionMessage("", &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionMessageTest, UnknownTypeRejected) {
  SessionMessage decoded;
  std::string payload(1, '\x7f');
  EXPECT_EQ(DecodeSessionMessage(payload, &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionMessageTest, TruncatedAtEveryPrefixNeverCrashes) {
  SessionMessage msg;
  msg.type = SessionMessageType::kQuery;
  msg.query = ServerQueryKind::kExtent;
  msg.stream = "stream-name";
  msg.dir_x = 1.0;
  const std::string payload = EncodePayload(msg);
  for (size_t len = 0; len < payload.size(); ++len) {
    SessionMessage decoded;
    const Status st = DecodeSessionMessage(payload.substr(0, len), &decoded);
    EXPECT_FALSE(st.ok()) << "prefix of " << len << " bytes decoded";
  }
  SessionMessage decoded;
  EXPECT_TRUE(DecodeSessionMessage(payload, &decoded).ok());
}

TEST(SessionMessageTest, TrailingBytesRejected) {
  SessionMessage msg;
  msg.type = SessionMessageType::kBye;
  std::string payload = EncodePayload(msg);
  payload.push_back('x');
  SessionMessage decoded;
  EXPECT_EQ(DecodeSessionMessage(payload, &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionMessageTest, StringLengthPastEndRejected) {
  // A HELLO whose token length claims more bytes than the payload holds.
  std::string payload;
  payload.push_back(static_cast<char>(SessionMessageType::kHello));
  const uint32_t version = 1;
  payload.append(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint32_t huge = 0xFFFFFFFFu;
  payload.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  payload.append("short");
  SessionMessage decoded;
  EXPECT_EQ(DecodeSessionMessage(payload, &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionMessageTest, RandomBytesNeverCrash) {
  Rng rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string payload(rng.UniformInt(64), '\0');
    for (char& c : payload) c = static_cast<char>(rng.UniformInt(256));
    SessionMessage decoded;
    (void)DecodeSessionMessage(payload, &decoded);  // Status either way.
  }
}

// ---------------------------------------------------------------------------
// FrameDecoder: framing adversaries
// ---------------------------------------------------------------------------

TEST(FrameDecoderTest, ReassemblesByteAtATime) {
  const std::string frame = Frame("hello") + Frame("") + Frame("world!");
  FrameDecoder decoder;
  std::vector<std::string> out;
  for (const char c : frame) {
    decoder.Feed(std::string(1, c));
    std::string payload;
    bool got = false;
    ASSERT_TRUE(decoder.Next(&payload, &got).ok());
    if (got) out.push_back(payload);
  }
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "hello");
  EXPECT_EQ(out[1], "");
  EXPECT_EQ(out[2], "world!");
  EXPECT_TRUE(decoder.Finish().ok());
}

TEST(FrameDecoderTest, InterleavedFramesInOneFeed) {
  std::string bytes;
  for (int i = 0; i < 50; ++i) bytes += Frame(std::string(i, 'a' + i % 26));
  FrameDecoder decoder;
  decoder.Feed(bytes);
  int frames = 0;
  for (;;) {
    std::string payload;
    bool got = false;
    ASSERT_TRUE(decoder.Next(&payload, &got).ok());
    if (!got) break;
    EXPECT_EQ(payload.size(), static_cast<size_t>(frames));
    ++frames;
  }
  EXPECT_EQ(frames, 50);
}

TEST(FrameDecoderTest, OversizedPrefixPoisonsTheStream) {
  FrameDecoder decoder(/*max_payload=*/1024);
  const uint32_t huge = 1 << 20;
  decoder.Feed(std::string(reinterpret_cast<const char*>(&huge),
                           sizeof(huge)));
  std::string payload;
  bool got = false;
  EXPECT_EQ(decoder.Next(&payload, &got).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(got);
  // Sticky: even a subsequently valid frame is refused — the framing is
  // unrecoverable once the length channel lies.
  decoder.Feed(Frame("ok"));
  EXPECT_EQ(decoder.Next(&payload, &got).code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameDecoderTest, MaxPayloadBoundaryAccepted) {
  FrameDecoder decoder(/*max_payload=*/8);
  decoder.Feed(Frame("12345678"));  // Exactly the bound: fine.
  std::string payload;
  bool got = false;
  ASSERT_TRUE(decoder.Next(&payload, &got).ok());
  EXPECT_TRUE(got);
  EXPECT_EQ(payload, "12345678");
  decoder.Feed(Frame("123456789"));  // One past: poisoned.
  EXPECT_FALSE(decoder.Next(&payload, &got).ok());
}

TEST(FrameDecoderTest, MidFrameDisconnectDetectedByFinish) {
  FrameDecoder decoder;
  const std::string frame = Frame("a complete payload");
  decoder.Feed(frame.substr(0, frame.size() - 3));
  std::string payload;
  bool got = false;
  ASSERT_TRUE(decoder.Next(&payload, &got).ok());
  EXPECT_FALSE(got);  // Incomplete: waiting, not an error.
  EXPECT_EQ(decoder.Finish().code(), StatusCode::kInvalidArgument);
  // Whereas a clean boundary is a clean shutdown.
  FrameDecoder clean;
  clean.Feed(frame);
  ASSERT_TRUE(clean.Next(&payload, &got).ok());
  EXPECT_TRUE(got);
  EXPECT_TRUE(clean.Finish().ok());
}

TEST(FrameDecoderTest, TruncatedLengthPrefixIsPending) {
  FrameDecoder decoder;
  decoder.Feed("\x02");  // One byte of a four-byte prefix.
  std::string payload;
  bool got = false;
  EXPECT_TRUE(decoder.Next(&payload, &got).ok());
  EXPECT_FALSE(got);
  EXPECT_FALSE(decoder.Finish().ok());  // ...but a disconnect here is torn.
}

TEST(FrameDecoderTest, GarbageBeforeHelloSurfacesAsStatusNotCrash) {
  // A client speaking HTTP (or anything else) at the socket: the first
  // four bytes parse as an absurd length and poison the stream.
  FrameDecoder decoder;
  std::string payload;
  bool got = false;
  decoder.Feed("GET / HTTP/1.1\r\nHost: x\r\n\r\n");
  const Status st = decoder.Next(&payload, &got);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(got);
}

TEST(FrameDecoderTest, RandomChunkedGarbageNeverCrashes) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder decoder;
    bool poisoned = false;
    for (int chunk = 0; chunk < 10 && !poisoned; ++chunk) {
      std::string bytes(rng.UniformInt(40), '\0');
      for (char& c : bytes) c = static_cast<char>(rng.UniformInt(256));
      decoder.Feed(bytes);
      for (;;) {
        std::string payload;
        bool got = false;
        if (!decoder.Next(&payload, &got).ok()) {
          poisoned = true;
          break;
        }
        if (!got) break;
        SessionMessage msg;
        (void)DecodeSessionMessage(payload, &msg);
      }
    }
  }
}

}  // namespace
}  // namespace streamhull
