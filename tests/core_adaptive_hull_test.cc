// Tests for the streaming adaptive hull (§5): structural consistency after
// every insert, the 2r+1 sample bound, the O(D/r^2) error bound, the L(theta)
// containment invariant (Lemma 5.3), fixed-size mode, and freezing.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/adaptive_hull.h"
#include "core/partially_adaptive.h"
#include "core/snapshot.h"
#include "geom/convex_hull.h"
#include "queries/queries.h"
#include "stream/generators.h"

namespace streamhull {
namespace {

constexpr double kPi = 3.14159265358979323846;

AdaptiveHullOptions Opts(uint32_t r) {
  AdaptiveHullOptions o;
  o.r = r;
  return o;
}

TEST(AdaptiveHullOptionsTest, Validation) {
  AdaptiveHullOptions o;
  o.r = 4;
  EXPECT_FALSE(o.Validate().ok());
  o.r = 16;
  EXPECT_TRUE(o.Validate().ok());
  EXPECT_EQ(o.EffectiveTreeHeight(), 4);
  o.max_tree_height = 2;
  EXPECT_EQ(o.EffectiveTreeHeight(), 2);
  o.mode = SamplingMode::kFixedSize;
  EXPECT_EQ(o.EffectiveFixedDirections(), 32u);
  o.fixed_directions = 8;  // Below r.
  EXPECT_FALSE(o.Validate().ok());
  o.fixed_directions = 64;
  o.max_tree_height = 1;  // Capacity 16 * 2 = 32 < 64.
  EXPECT_FALSE(o.Validate().ok());
  o.max_tree_height = 4;
  EXPECT_TRUE(o.Validate().ok());
}

TEST(AdaptiveHullTest, EmptyAndSinglePoint) {
  AdaptiveHull h(Opts(16));
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(h.CheckConsistency().ok());
  h.Insert({2, 3});
  EXPECT_EQ(h.num_points(), 1u);
  EXPECT_EQ(h.num_directions(), 16u);
  EXPECT_EQ(h.num_sample_points(), 1u);
  ASSERT_TRUE(h.CheckConsistency().ok()) << h.CheckConsistency().ToString();
  EXPECT_EQ(h.Polygon().size(), 1u);
  EXPECT_TRUE(h.Triangles().empty());  // All edges degenerate.
}

// Per-insert consistency across workloads. Small streams with the full
// structural audit after every single insert — this is the main correctness
// hammer for the engine.
class AdaptiveConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveConsistencyTest, EveryInsertKeepsAllInvariants) {
  const int seed = GetParam();
  std::unique_ptr<PointGenerator> gens[] = {
      std::make_unique<DiskGenerator>(seed),
      std::make_unique<SquareGenerator>(seed, 0.19),
      std::make_unique<EllipseGenerator>(seed, 16.0, kPi / 32 / 4),
      std::make_unique<SpiralGenerator>(seed, 4e-3),
      std::make_unique<ClusterGenerator>(seed, 3),
      std::make_unique<DriftWalkGenerator>(seed, 0.05)};
  for (auto& gen : gens) {
    AdaptiveHull h(Opts(16));
    for (int i = 0; i < 300; ++i) {
      h.Insert(gen->Next());
      const Status st = h.CheckConsistency();
      ASSERT_TRUE(st.ok()) << gen->Name() << " seed " << seed << " point " << i
                           << ": " << st.ToString();
      ASSERT_LE(h.num_directions(), 2u * 16 + 1) << gen->Name() << " " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveConsistencyTest,
                         ::testing::Range(0, 12));

TEST(AdaptiveHullTest, SampleBudgetTheorem54) {
  // At most 2r+1 sample points at ALL times, across r values.
  for (uint32_t r : {8u, 16u, 32u, 64u}) {
    EllipseGenerator gen(r, 16.0, 0.11);
    AdaptiveHull h(Opts(r));
    for (int i = 0; i < 3000; ++i) {
      h.Insert(gen.Next());
      ASSERT_LE(h.num_directions(), 2 * static_cast<size_t>(r) + 1)
          << "r=" << r << " i=" << i;
      ASSERT_LE(h.num_sample_points(), h.num_directions());
    }
  }
}

TEST(AdaptiveHullTest, ErrorBoundCorollary52) {
  // True hull within 16*pi*P/r^2 of the adaptive hull, measured against the
  // exact hull of everything seen, at several checkpoints.
  for (uint32_t r : {16u, 32u}) {
    std::unique_ptr<PointGenerator> gens[] = {
        std::make_unique<DiskGenerator>(3),
        std::make_unique<EllipseGenerator>(4, 16.0, 0.07),
        std::make_unique<SquareGenerator>(5, 0.3)};
    for (auto& gen : gens) {
      AdaptiveHull h(Opts(r));
      std::vector<Point2> all;
      for (int i = 0; i < 4000; ++i) {
        const Point2 p = gen->Next();
        h.Insert(p);
        all.push_back(p);
        if (i % 500 == 499) {
          const ConvexPolygon approx = h.Polygon();
          double err = 0;
          for (const Point2& v : ConvexHullOf(all)) {
            err = std::max(err, approx.DistanceOutside(v));
          }
          ASSERT_LE(err, h.ErrorBound() + 1e-9)
              << gen->Name() << " r=" << r << " i=" << i;
        }
      }
    }
  }
}

TEST(AdaptiveHullTest, InvariantLemma53) {
  // The paper's containment invariant: every stream point lies inside the
  // half-plane of L(theta) for every active sample direction theta, where
  // L(theta) is the supporting line pushed out by OffsetForLevel(level).
  EllipseGenerator gen(11, 16.0, 0.21);
  AdaptiveHull h(Opts(16));
  std::vector<Point2> all;
  for (int i = 0; i < 1500; ++i) {
    const Point2 p = gen.Next();
    h.Insert(p);
    all.push_back(p);
    if (i % 250 != 249) continue;
    for (const HullSample& s : h.Samples()) {
      const Point2 u = s.direction.ToVector();
      const double bound =
          Dot(s.point, u) + h.OffsetForLevel(s.direction.level());
      for (const Point2& q : all) {
        ASSERT_LE(Dot(q, u), bound + 1e-9)
            << "i=" << i << " dir " << s.direction;
      }
    }
  }
}

TEST(AdaptiveHullTest, PerDirectionSlacksCertifyTheStream) {
  // The tightened per-direction slacks (captured at activation time, not
  // recomputed from the final P) must still satisfy the Lemma 5.3
  // containment: every stream point within SampleSlacks()[i] of sample i's
  // supporting line. The drift walk grows P long after early activations,
  // which is exactly the case the capture tightens.
  DriftWalkGenerator gen(12);
  AdaptiveHull h(Opts(16));
  std::vector<Point2> all;
  for (int i = 0; i < 3000; ++i) {
    const Point2 p = gen.Next();
    h.Insert(p);
    all.push_back(p);
    if (i % 500 != 499) continue;
    const auto samples = h.Samples();
    const auto slacks = h.SampleSlacks();
    ASSERT_EQ(slacks.size(), samples.size());
    for (size_t k = 0; k < samples.size(); ++k) {
      // Never looser than the per-level formula; zero for uniform.
      ASSERT_LE(slacks[k],
                h.OffsetForLevel(samples[k].direction.level()) + 1e-12);
      if (samples[k].direction.IsUniform()) {
        ASSERT_EQ(slacks[k], 0.0);
      }
      const Point2 u = samples[k].direction.ToVector();
      const double bound = Dot(samples[k].point, u) + slacks[k];
      for (const Point2& q : all) {
        ASSERT_LE(Dot(q, u), bound + 1e-9)
            << "i=" << i << " dir " << samples[k].direction;
      }
    }
  }
}

TEST(AdaptiveHullTest, SlackCaptureTightensLongDriftingSummaries) {
  // After a long drift (P grows ~monotonically), directions activated early
  // keep their small activation-time offsets, so the summed slack — and
  // with it OuterPolygon's inflation — is strictly below what the final-P
  // per-level formula would charge.
  DriftWalkGenerator gen(13);
  AdaptiveHull h(Opts(16));
  for (int i = 0; i < 20000; ++i) h.Insert(gen.Next());
  const auto samples = h.Samples();
  const auto slacks = h.SampleSlacks();
  double tightened = 0, per_level = 0;
  for (size_t k = 0; k < samples.size(); ++k) {
    tightened += slacks[k];
    per_level += h.OffsetForLevel(samples[k].direction.level());
  }
  ASSERT_GT(per_level, 0.0);
  EXPECT_LE(tightened, per_level);
  EXPECT_LT(tightened, 0.9 * per_level)
      << "activation-time capture should visibly tighten a drift walk";
  // And the tightened outer polygon is correspondingly no larger.
  const double outer_area = h.OuterPolygon().Area();
  std::vector<double> naive(samples.size());
  for (size_t k = 0; k < samples.size(); ++k) {
    naive[k] = h.OffsetForLevel(samples[k].direction.level());
  }
  const double naive_area = SupportIntersection(samples, naive).Area();
  EXPECT_LE(outer_area, naive_area + 1e-9);
}

TEST(AdaptiveHullTest, ApproxHullVerticesAreStreamPoints) {
  SquareGenerator gen(21, 0.4);
  AdaptiveHull h(Opts(16));
  std::vector<Point2> all;
  for (int i = 0; i < 2000; ++i) {
    const Point2 p = gen.Next();
    h.Insert(p);
    all.push_back(p);
  }
  const ConvexPolygon truth(ConvexHullOf(all));
  const ConvexPolygon approx = h.Polygon();
  for (size_t i = 0; i < approx.size(); ++i) {
    EXPECT_TRUE(truth.ContainsBrute(approx[i])) << approx[i];
  }
}

TEST(AdaptiveHullTest, AdaptiveDirectionsAppearOnSkinnyData) {
  // A skinny ellipse must trigger refinement (long flat edges).
  EllipseGenerator gen(31, 16.0, 0.05);
  AdaptiveHull h(Opts(16));
  for (int i = 0; i < 2000; ++i) h.Insert(gen.Next());
  EXPECT_GT(h.num_directions(), 16u);
  EXPECT_GT(h.stats().directions_refined, 0u);
}

TEST(AdaptiveHullTest, UnrefinementHappensWhenHullGrows) {
  // Start with a tiny skinny shape (heavy refinement), then blow the hull up
  // with a huge disk: P grows, old refinements must be reclaimed.
  AdaptiveHull h(Opts(16));
  EllipseGenerator skinny(41, 16.0, 0.0, /*semi_major=*/1.0);
  for (int i = 0; i < 1000; ++i) h.Insert(skinny.Next());
  DiskGenerator big(42, /*radius=*/500.0);
  for (int i = 0; i < 1000; ++i) h.Insert(big.Next());
  EXPECT_GT(h.stats().directions_unrefined, 0u);
  ASSERT_TRUE(h.CheckConsistency().ok()) << h.CheckConsistency().ToString();
}

TEST(AdaptiveHullTest, TreeHeightZeroIsUniformSampling) {
  AdaptiveHullOptions o = Opts(32);
  o.max_tree_height = 0;
  AdaptiveHull h(o);
  DiskGenerator gen(51);
  for (int i = 0; i < 1000; ++i) h.Insert(gen.Next());
  EXPECT_EQ(h.num_directions(), 32u);
  EXPECT_EQ(h.stats().directions_refined, 0u);
}

TEST(AdaptiveHullTest, DepthNeverExceedsCap) {
  AdaptiveHullOptions o = Opts(16);
  o.max_tree_height = 2;
  AdaptiveHull h(o);
  EllipseGenerator gen(61, 16.0, 0.13);
  for (int i = 0; i < 2000; ++i) h.Insert(gen.Next());
  // Consistency includes the depth <= cap check.
  ASSERT_TRUE(h.CheckConsistency().ok()) << h.CheckConsistency().ToString();
  for (const HullSample& s : h.Samples()) {
    EXPECT_LE(s.direction.level(), 2u);
  }
}

TEST(AdaptiveHullTest, HeapQueueMatchesInvariants) {
  // Binary-heap threshold queue (exact thresholds) keeps every invariant.
  AdaptiveHullOptions o = Opts(16);
  o.queue_kind = ThresholdQueueKind::kBinaryHeap;
  AdaptiveHull h(o);
  EllipseGenerator gen(71, 16.0, 0.29);
  for (int i = 0; i < 1500; ++i) {
    h.Insert(gen.Next());
    if (i % 50 == 49) {
      ASSERT_TRUE(h.CheckConsistency().ok())
          << i << ": " << h.CheckConsistency().ToString();
    }
  }
}

TEST(AdaptiveHullFixedSizeTest, HoldsExactlyTwoRDirections) {
  AdaptiveHullOptions o = Opts(16);
  o.mode = SamplingMode::kFixedSize;
  AdaptiveHull h(o);
  EllipseGenerator gen(81, 16.0, 0.17);
  for (int i = 0; i < 2000; ++i) {
    h.Insert(gen.Next());
    ASSERT_LE(h.num_directions(), 32u) << i;
    const Status st = h.CheckConsistency();
    ASSERT_TRUE(st.ok()) << i << ": " << st.ToString();
  }
  // Once the hull is 2-dimensional the padding loop reaches the target.
  EXPECT_EQ(h.num_directions(), 32u);
}

TEST(AdaptiveHullFixedSizeTest, ReadaptsToDistributionChange) {
  // The fixed-size variant must migrate directions when the shape rotates:
  // refinement concentrates near the skinny ellipse's ends.
  AdaptiveHullOptions o = Opts(16);
  o.mode = SamplingMode::kFixedSize;
  AdaptiveHull h(o);
  ChangingEllipseGenerator gen(91, 3000, 0.1);
  for (int i = 0; i < 6000; ++i) h.Insert(gen.Next());
  EXPECT_GT(h.stats().rebalance_exchanges + h.stats().directions_unrefined,
            0u);
  ASSERT_TRUE(h.CheckConsistency().ok()) << h.CheckConsistency().ToString();
}

TEST(PartiallyAdaptiveTest, FreezesAfterTraining) {
  AdaptiveHullOptions o = Opts(16);
  o.mode = SamplingMode::kFixedSize;
  PartiallyAdaptiveHull h(o, 500);
  DiskGenerator gen(99);
  for (int i = 0; i < 400; ++i) h.Insert(gen.Next());
  EXPECT_TRUE(h.training());
  for (int i = 0; i < 200; ++i) h.Insert(gen.Next());
  EXPECT_FALSE(h.training());
  const auto before = h.Samples();
  // Frozen: new extreme points may move samples outward but never add or
  // remove directions.
  EllipseGenerator gen2(100, 16.0, 0.3, /*semi_major=*/50.0);
  for (int i = 0; i < 500; ++i) h.Insert(gen2.Next());
  const auto after = h.Samples();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].direction, after[i].direction);
  }
  ASSERT_TRUE(h.CheckConsistency().ok()) << h.CheckConsistency().ToString();
}

TEST(PartiallyAdaptiveTest, FrozenExtremaStillTrackSupport) {
  // Even frozen, each stored sample must remain the best point seen for its
  // direction.
  AdaptiveHullOptions o = Opts(16);
  o.mode = SamplingMode::kFixedSize;
  PartiallyAdaptiveHull h(o, 100);
  Rng rng(123);
  std::vector<Point2> all;
  for (int i = 0; i < 1200; ++i) {
    const Point2 p{rng.Uniform(-3, 3), rng.Uniform(-3, 3)};
    h.Insert(p);
    all.push_back(p);
  }
  for (const HullSample& s : h.Samples()) {
    const Point2 u = s.direction.ToVector();
    double best = -1e300;
    for (const Point2& p : all) best = std::max(best, Dot(p, u));
    EXPECT_NEAR(Dot(s.point, u), best, 1e-12);
  }
}

TEST(AdaptiveHullTest, TrianglesCoverTrueHull) {
  // The true hull is sandwiched between the approximate hull and the ring of
  // uncertainty triangles: every true-hull vertex outside the approximate
  // hull lies in (or within epsilon of) some uncertainty triangle.
  EllipseGenerator gen(111, 16.0, 0.07);
  AdaptiveHull h(Opts(16));
  std::vector<Point2> all;
  for (int i = 0; i < 3000; ++i) {
    const Point2 p = gen.Next();
    h.Insert(p);
    all.push_back(p);
  }
  const ConvexPolygon approx = h.Polygon();
  const auto triangles = h.Triangles();
  for (const Point2& v : ConvexHullOf(all)) {
    if (approx.DistanceOutside(v) <= 1e-12) continue;
    double nearest = 1e300;
    for (const UncertaintyTriangle& t : triangles) {
      const ConvexPolygon tri(
          ConvexHullOf(std::vector<Point2>{t.a, t.apex, t.b}));
      nearest = std::min(nearest, tri.DistanceOutside(v));
    }
    EXPECT_LE(nearest, 1e-7) << v;
  }
}

TEST(AdaptiveHullTest, StatsAccounting) {
  AdaptiveHull h(Opts(16));
  DiskGenerator gen(131);
  for (int i = 0; i < 500; ++i) h.Insert(gen.Next());
  const auto& st = h.stats();
  EXPECT_EQ(st.points_processed, 500u);
  EXPECT_GT(st.points_discarded, 0u);
  EXPECT_LT(st.points_discarded, 500u);
  EXPECT_EQ(h.num_points(), 500u);
}

TEST(AdaptiveHullTest, MassiveCoordinatesAndTinyCoordinates) {
  for (double scale : {1e-6, 1.0, 1e6}) {
    AdaptiveHull h(Opts(16));
    EllipseGenerator gen(141, 16.0, 0.09, /*semi_major=*/scale);
    for (int i = 0; i < 500; ++i) {
      h.Insert(gen.Next());
    }
    const Status st = h.CheckConsistency();
    ASSERT_TRUE(st.ok()) << "scale " << scale << ": " << st.ToString();
  }
}

TEST(AdaptiveHullTest, AdversarialAxisAlignedPoints) {
  // Points on a horizontal line, then on a vertical line: exercises
  // collinear/tie handling end to end.
  AdaptiveHull h(Opts(16));
  for (int i = 0; i <= 50; ++i) h.Insert({static_cast<double>(i), 0.0});
  ASSERT_TRUE(h.CheckConsistency().ok()) << h.CheckConsistency().ToString();
  for (int i = 0; i <= 50; ++i) h.Insert({25.0, static_cast<double>(i - 25)});
  ASSERT_TRUE(h.CheckConsistency().ok()) << h.CheckConsistency().ToString();
  const ConvexPolygon poly = h.Polygon();
  EXPECT_TRUE(poly.Contains({0, 0}));
  EXPECT_TRUE(poly.Contains({50, 0}));
}

// Ring-then-mostly-interior stream: the prefilter workload shape, with
// enough accepts sprinkled in to exercise the cooldown machinery.
std::vector<Point2> MixedPrefilterStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const bool interior = i >= 64 && rng.NextDouble() < 0.9;
    const double a = rng.Uniform(0, 2 * kPi);
    const double rad =
        interior ? 0.4 * rng.NextDouble() : 0.98 + 0.02 * rng.NextDouble();
    pts.push_back({rad * std::cos(a), rad * std::sin(a)});
  }
  return pts;
}

TEST(AdaptiveHullTest, PrefilterTierCountersSumToTotal) {
  AdaptiveHullOptions o = Opts(32);
  AdaptiveHull h(o);
  h.InsertBatch(MixedPrefilterStream(20000, 171));
  const auto& st = h.stats();
  EXPECT_GT(st.batch_prefilter_rejections, 10000u);
  EXPECT_EQ(st.batch_prefilter_rejections,
            st.batch_simd_rejections + st.batch_scalar_rejections);
  EXPECT_GT(st.batch_cache_refreshes, 0u);
  ASSERT_TRUE(h.CheckConsistency().ok()) << h.CheckConsistency().ToString();
}

TEST(AdaptiveHullTest, CooldownDivisorTradesRefreshWorkNotSummary) {
  const std::vector<Point2> pts = MixedPrefilterStream(20000, 181);
  auto run = [&pts](uint32_t divisor) {
    AdaptiveHullOptions o = Opts(64);
    o.batch_cooldown_divisor = divisor;
    AdaptiveHull h(o);
    h.InsertBatch(pts);
    EXPECT_TRUE(h.CheckConsistency().ok());
    return std::pair<uint64_t, std::string>(h.stats().batch_cache_refreshes,
                                            EncodeSummaryView(h));
  };

  // divisor 0 disables the cooldown entirely: every accept triggers an
  // immediate refresh. Larger cooldowns (divisor 1 = a full cache-size
  // wait) coalesce accept bursts into fewer rebuilds.
  const auto [refreshes_off, bytes_off] = run(0);
  const auto [refreshes_default, bytes_default] = run(8);
  const auto [refreshes_long, bytes_long] = run(1);
  EXPECT_GT(refreshes_long, 0u);
  EXPECT_GT(refreshes_off, refreshes_default);
  EXPECT_GT(refreshes_default, refreshes_long);

  // The knob trades refresh work against prefilter coverage; the summary
  // itself is untouchable.
  EXPECT_EQ(bytes_off, bytes_default);
  EXPECT_EQ(bytes_default, bytes_long);
}

}  // namespace
}  // namespace streamhull
