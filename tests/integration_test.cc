// End-to-end integration tests reproducing the paper's headline claims at
// test-sized scale:
//   * adaptive beats uniform by a wide margin on rotated skinny ellipses,
//   * adaptive error scales like 1/r^2 while uniform scales like 1/r,
//   * the circle lower bound (Theorem 5.5) is Omega(D/r^2),
//   * continuous adaptation beats a frozen (partially adaptive) summary on a
//     changing distribution,
//   * multi-stream queries (separation / containment) work off the
//     summaries.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive_hull.h"
#include "core/partially_adaptive.h"
#include "eval/metrics.h"
#include "geom/convex_hull.h"
#include "queries/queries.h"
#include "stream/generators.h"

namespace streamhull {
namespace {

constexpr double kPi = 3.14159265358979323846;

double MeasureHausdorff(const ConvexPolygon& approx,
                        const std::vector<Point2>& stream) {
  double err = 0;
  for (const Point2& v : ConvexHullOf(stream)) {
    err = std::max(err, approx.DistanceOutside(v));
  }
  return err;
}

TEST(IntegrationTest, AdaptiveBeatsUniformOnRotatedEllipse) {
  // The core Table 1 effect at test scale: same 32-sample budget, adaptive
  // leaves far fewer points outside.
  EllipseGenerator gen(1, 16.0, (2 * kPi / 32) / 4);
  const auto stream = gen.Take(20000);

  UniformHull uniform(32);
  AdaptiveHullOptions o;
  o.r = 16;
  o.mode = SamplingMode::kFixedSize;
  AdaptiveHull adaptive(o);
  for (const Point2& p : stream) {
    uniform.Insert(p);
    adaptive.Insert(p);
  }
  const HullQuality uq = EvaluateHull(uniform.Polygon(), uniform.Triangles(),
                                      stream);
  const HullQuality aq = EvaluateHull(adaptive.Polygon(), adaptive.Triangles(),
                                      stream);
  EXPECT_LT(aq.pct_outside * 3, uq.pct_outside);
  EXPECT_LT(aq.max_outside_distance * 2, uq.max_outside_distance);
}

TEST(IntegrationTest, ErrorScalesQuadraticallyInR) {
  // Doubling r should cut adaptive error by ~4x (1/r^2) but uniform error by
  // only ~2x (1/r). Allow generous slack for constants and sampling noise:
  // require adaptive ratio > 2.4 and uniform ratio in (1.2, 3.4).
  DiskGenerator gen(5);
  const auto stream = gen.Take(60000);
  auto adaptive_err = [&](uint32_t r) {
    AdaptiveHullOptions o;
    o.r = r;
    AdaptiveHull h(o);
    for (const Point2& p : stream) h.Insert(p);
    return MeasureHausdorff(h.Polygon(), stream);
  };
  auto uniform_err = [&](uint32_t r) {
    UniformHull h(r);
    for (const Point2& p : stream) h.Insert(p);
    return MeasureHausdorff(h.Polygon(), stream);
  };
  const double a16 = adaptive_err(16), a32 = adaptive_err(32);
  const double u16 = uniform_err(16), u32 = uniform_err(32);
  EXPECT_GT(a16 / a32, 2.4) << "a16=" << a16 << " a32=" << a32;
  EXPECT_GT(u16 / u32, 1.2) << "u16=" << u16 << " u32=" << u32;
  EXPECT_LT(u16 / u32, 3.4) << "u16=" << u16 << " u32=" << u32;
  // At equal r, adaptive is at least as accurate.
  EXPECT_LE(a32, u32 * 1.05);
}

TEST(IntegrationTest, CircleLowerBoundTheorem55) {
  // 2r evenly spaced circle points: any summary of ~r points must miss some
  // vertex by Omega(D/r^2). The adaptive hull with budget 2r+1 sits right at
  // the bound: its error is Theta(D/r^2) — at least the sagitta of a chord
  // skipping one point — and within the upper bound.
  for (uint32_t r : {16u, 32u, 64u}) {
    CircleGenerator gen(7, 4 * r, 1.0);
    const auto stream = gen.Take(4 * r);
    AdaptiveHullOptions o;
    o.r = r;
    AdaptiveHull h(o);
    for (const Point2& p : stream) h.Insert(p);
    const double err = MeasureHausdorff(h.Polygon(), stream);
    const double rr = static_cast<double>(r);
    // Upper: Corollary 5.2. Lower: the summary keeps <= 2r+1 of the 4r
    // points, so some skipped vertex lies at least the one-gap sagitta
    // ~ (pi/(4r))^2 / 2 away... relaxed by a constant.
    EXPECT_LE(err, 16 * kPi * h.perimeter() / (rr * rr) + 1e-9) << r;
    const double sagitta = 1.0 - std::cos(kPi / (4.0 * rr));
    EXPECT_GE(err, 0.5 * sagitta) << r;
  }
}

TEST(IntegrationTest, ChangingDistributionPartialVsAdaptive) {
  // Table 1 section 4 at test scale: after the distribution flips, the
  // frozen summary leaves an order of magnitude more points outside.
  const uint64_t phase = 10000;
  AdaptiveHullOptions o;
  o.r = 16;
  o.mode = SamplingMode::kFixedSize;

  ChangingEllipseGenerator gen_a(11, phase, 0.05);
  ChangingEllipseGenerator gen_p(11, phase, 0.05);  // Same stream.
  AdaptiveHull adaptive(o);
  PartiallyAdaptiveHull partial(o, phase);
  std::vector<Point2> stream;
  for (uint64_t i = 0; i < 2 * phase; ++i) {
    const Point2 p = gen_a.Next();
    gen_p.Next();
    stream.push_back(p);
    adaptive.Insert(p);
    partial.Insert(p);
  }
  const HullQuality aq =
      EvaluateHull(adaptive.Polygon(), adaptive.Triangles(), stream);
  const HullQuality pq =
      EvaluateHull(partial.Polygon(), partial.Triangles(), stream);
  EXPECT_LT(aq.pct_outside * 3, pq.pct_outside)
      << "adaptive " << aq.pct_outside << "% vs partial " << pq.pct_outside
      << "%";
}

TEST(IntegrationTest, TwoStreamSeparationTracking) {
  // Two drifting point streams; the summaries' separation distance must
  // track the exact hulls' separation within the summary error bound.
  DiskGenerator gen_a(21, 1.0, {0, 0});
  DiskGenerator gen_b(22, 1.0, {5, 0});
  AdaptiveHullOptions o;
  o.r = 16;
  AdaptiveHull ha(o), hb(o);
  std::vector<Point2> pa, pb;
  for (int i = 0; i < 5000; ++i) {
    const Point2 a = gen_a.Next();
    const Point2 b = gen_b.Next();
    ha.Insert(a);
    hb.Insert(b);
    pa.push_back(a);
    pb.push_back(b);
  }
  const auto approx = Separation(ha.Polygon(), hb.Polygon());
  const auto exact = Separation(ConvexPolygon(ConvexHullOf(pa)),
                                ConvexPolygon(ConvexHullOf(pb)));
  ASSERT_TRUE(approx.separated);
  ASSERT_TRUE(exact.separated);
  // Approximate hulls are inside the true hulls: approx distance >= exact,
  // within the two summaries' error bounds.
  EXPECT_GE(approx.distance, exact.distance - 1e-9);
  EXPECT_LE(approx.distance,
            exact.distance + ha.ErrorBound() + hb.ErrorBound() + 1e-9);
}

TEST(IntegrationTest, ContainmentDetection) {
  // Stream B surrounds stream A; the summaries must report containment of
  // A's hull in B's hull.
  DiskGenerator gen_a(31, 0.5);
  CircleGenerator gen_b(32, 256, 5.0);
  AdaptiveHullOptions o;
  o.r = 16;
  AdaptiveHull ha(o), hb(o);
  for (int i = 0; i < 3000; ++i) ha.Insert(gen_a.Next());
  for (int i = 0; i < 256; ++i) hb.Insert(gen_b.Next());
  EXPECT_TRUE(HullContains(hb.Polygon(), ha.Polygon()));
  EXPECT_FALSE(HullContains(ha.Polygon(), hb.Polygon()));
}

TEST(IntegrationTest, DiameterTrackingOnStream) {
  // The summary's diameter tracks the true diameter within (1+O(1/r^2)).
  SpiralGenerator gen(41, 2e-4);
  AdaptiveHullOptions o;
  o.r = 32;
  AdaptiveHull h(o);
  std::vector<Point2> all;
  for (int i = 0; i < 4000; ++i) {
    const Point2 p = gen.Next();
    h.Insert(p);
    all.push_back(p);
    if (i % 1000 == 999) {
      const double true_d = Diameter(ConvexPolygon(ConvexHullOf(all))).value;
      const double approx_d = Diameter(h.Polygon()).value;
      EXPECT_LE(approx_d, true_d + 1e-9);
      EXPECT_GE(approx_d, true_d * (1 - 4.0 / (32.0 * 32.0)));
    }
  }
}

TEST(IntegrationTest, LongStreamStaysConsistent) {
  // 50k mixed-phase points with periodic audits: regression net against
  // slow structural corruption.
  AdaptiveHullOptions o;
  o.r = 16;
  AdaptiveHull h(o);
  DiskGenerator d(51);
  EllipseGenerator e(52, 16.0, 0.4, 3.0);
  ClusterGenerator c(53, 5);
  for (int i = 0; i < 50000; ++i) {
    Point2 p;
    if (i < 15000) {
      p = d.Next();
    } else if (i < 35000) {
      p = e.Next();
    } else {
      p = c.Next();
    }
    h.Insert(p);
    if (i % 5000 == 4999) {
      const Status st = h.CheckConsistency();
      ASSERT_TRUE(st.ok()) << i << ": " << st.ToString();
    }
  }
  EXPECT_LE(h.num_directions(), 33u);
}

}  // namespace
}  // namespace streamhull
