// Differential tests for fleet watches (StreamGroup::WatchAllPairs).
//
// The fleet path exists to make Poll() sub-quadratic, but its contract is
// semantic: events (kinds, names, poll indices) must be *identical* to what
// brute-force evaluation of every pair produces. The ground truth comes in
// two interchangeable forms, used at different scales:
//   - an explicit control group with a WatchPair registered on every
//     canonical pair (64- and 512-stream configs — the strongest oracle,
//     since it exercises none of the fleet machinery), and
//   - the same fleet group with the force-all-candidates hook, which
//     evaluates every pair through the narrow phase (2k streams, where a
//     quadratic watch list is too slow to build per case).
// Event order across pairs legitimately differs between the paths (the
// fleet iterates candidates in sweep order, the control in registration
// order), so comparisons sort both sides by (poll, pair, predicate, kind)
// — a total order, since one poll emits at most one event per pair
// orientation per predicate.
//
// The suite also pins the parallel determinism contract — fleet Poll at
// {1, 2, 8} threads is byte-identical (same order, not just same set) to
// the no-pool group — and the RemoveStream lifecycle (10k streams, 1k
// removals, no stale events, slot reuse cannot resurrect old pair state).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hull_engine.h"
#include "core/snapshot.h"
#include "multi/stream_group.h"
#include "stream/generators.h"

namespace streamhull {
namespace {

AdaptiveHullOptions Opts(uint32_t r = 8) {
  AdaptiveHullOptions o;
  o.r = r;
  return o;
}

std::string StreamName(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "s%05d", i);
  return buf;
}

std::tuple<uint64_t, const std::string&, const std::string&,
           PairEvent::Predicate, PairEvent::Kind>
EventKey(const PairEvent& e) {
  return {e.poll_index, e.first, e.second, e.predicate, e.kind};
}

void SortEvents(std::vector<PairEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const PairEvent& a, const PairEvent& b) {
                     return EventKey(a) < EventKey(b);
                   });
}

std::string EventToString(const PairEvent& e) {
  static const char* kKinds[] = {"sep-lost",  "sep-gained", "cont-started",
                                 "cont-ended", "cert-lost",  "cert-gained"};
  static const char* kPreds[] = {"separability", "containment"};
  return std::string(kKinds[static_cast<int>(e.kind)]) + "/" +
         kPreds[static_cast<int>(e.predicate)] + " (" + e.first + "," +
         e.second + ") @poll " + std::to_string(e.poll_index);
}

void ExpectSameEvents(std::vector<PairEvent> fleet,
                      std::vector<PairEvent> control, const char* where) {
  SortEvents(fleet);
  SortEvents(control);
  ASSERT_EQ(fleet.size(), control.size())
      << where << ": fleet emitted " << fleet.size() << " events, control "
      << control.size();
  for (size_t i = 0; i < fleet.size(); ++i) {
    ASSERT_EQ(EventKey(fleet[i]), EventKey(control[i]))
        << where << " event " << i << ": fleet=" << EventToString(fleet[i])
        << " control=" << EventToString(control[i]);
  }
}

// ---------------------------------------------------------------------------
// Scenario driver
// ---------------------------------------------------------------------------

// A deterministic fleet scenario: streams on a grid, each fed from one of
// the generator families, with drifting streams that collide into their
// right-hand neighbors (separability events), nested big/small pairs
// (containment events), and optional remote streams fed v2/v3 frames from
// shadow producer engines. Identical point batches / frame bytes go to
// every attached group, so any cross-group event divergence is a bug in
// the poll path, not the data.
struct ScenarioConfig {
  int num_streams = 64;
  EngineKind kind = EngineKind::kAdaptive;
  int family = 0;          // 0..6, or -1 to mix families per stream.
  int ticks = 6;
  int points_per_tick = 24;
  int remote_every = 0;    // Every k-th stream is remote; 0 = none.
  uint64_t seed = 1;
};

constexpr int kNumFamilies = 7;

std::unique_ptr<PointGenerator> MakeFamily(int family, uint64_t seed) {
  switch (family) {
    case 0: return std::make_unique<DiskGenerator>(seed);
    case 1: return std::make_unique<SquareGenerator>(seed, 0.3);
    case 2: return std::make_unique<EllipseGenerator>(seed, 4.0, 0.7);
    case 3: return std::make_unique<CircleGenerator>(seed, 64);
    case 4: return std::make_unique<ClusterGenerator>(seed, 3);
    case 5: return std::make_unique<DriftWalkGenerator>(seed, 0.05);
    default: return std::make_unique<SpiralGenerator>(seed, 1e-3);
  }
}

class FleetScenario {
 public:
  explicit FleetScenario(const ScenarioConfig& config) : config_(config) {
    for (int i = 0; i < config.num_streams; ++i) {
      const int family =
          config.family >= 0 ? config.family : i % kNumFamilies;
      gens_.push_back(MakeFamily(family, config.seed * 7919 + i));
      if (IsRemote(i)) {
        producers_.emplace(i, MakeEngine(config.kind,
                                         EngineOptions{.hull = Opts()}));
      }
    }
  }

  bool IsRemote(int i) const {
    return config_.remote_every > 0 && i % config_.remote_every == 1;
  }

  // The i-th stream's placement: cells on an 8-wide grid with spacing that
  // keeps unit-extent families separated until a mover reaches them.
  // Streams with i % 3 == 0 drift right each tick; streams with
  // i % 16 == 6 are the small half of a nested pair, scaled down into
  // stream i-1's cell (containment events).
  void Transform(int i, int tick, std::vector<Point2>* pts) const {
    const bool nested_small = i % 16 == 6;
    const int anchor = nested_small ? i - 1 : i;
    const double spacing = 2.6;
    double cx = (anchor % 8) * spacing;
    double cy = (anchor / 8) * spacing;
    double scale = 1.0;
    if (nested_small) {
      scale = 0.12;
    } else if (i % 3 == 0) {
      cx += 0.4 * tick;  // Mover: reaches the right neighbor around tick 4.
    }
    for (Point2& p : *pts) {
      p.x = p.x * scale + cx;
      p.y = p.y * scale + cy;
    }
  }

  // Feeds one tick of data to every registered group, identically.
  // Streams the caller has since removed are skipped (all groups are
  // assumed to hold the same membership).
  void FeedTick(int tick, std::vector<StreamGroup*> groups) {
    for (int i = 0; i < config_.num_streams; ++i) {
      const std::string name = StreamName(i);
      SummaryView probe;
      if (!groups.empty() && !groups[0]->View(name, &probe).ok()) {
        gens_[i]->Take(config_.points_per_tick);  // Keep streams aligned.
        continue;
      }
      std::vector<Point2> pts = gens_[i]->Take(config_.points_per_tick);
      Transform(i, tick, &pts);
      if (IsRemote(i)) {
        // Shadow producer: same points, then ship bytes — a full v2 frame
        // on the first tick, v3 deltas after (with v2 fallback, mirroring
        // a real producer's resync behavior).
        HullEngine& producer = *producers_.at(i);
        const uint64_t base = producer.num_points();
        producer.InsertBatch(pts);
        std::string bytes;
        if (tick == 0 ||
            !producer.EncodeSummaryDelta(base, &bytes).ok()) {
          bytes = producer.EncodeView();
        }
        for (StreamGroup* g : groups) {
          ASSERT_TRUE(g->UpdateRemoteStream(name, bytes).ok());
        }
      } else {
        for (StreamGroup* g : groups) {
          ASSERT_TRUE(g->InsertBatch(name, pts).ok());
        }
      }
    }
  }

  void AddStreamsTo(StreamGroup& group) const {
    for (int i = 0; i < config_.num_streams; ++i) {
      if (IsRemote(i)) {
        ASSERT_TRUE(group.AddRemoteStream(StreamName(i)).ok());
      } else {
        ASSERT_TRUE(group.AddStream(StreamName(i), config_.kind).ok());
      }
    }
  }

  const ScenarioConfig& config() const { return config_; }

 private:
  ScenarioConfig config_;
  std::vector<std::unique_ptr<PointGenerator>> gens_;
  std::map<int, std::unique_ptr<HullEngine>> producers_;
};

// Registers an explicit watch on every canonical pair of current streams.
void WatchAllExplicitly(StreamGroup& group) {
  const std::vector<std::string> names = group.StreamNames();
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      ASSERT_TRUE(group.WatchPair(names[i], names[j]).ok());
    }
  }
}

// Runs the scenario against an explicit-watch control group and returns
// the total number of events both sides agreed on.
size_t RunDifferentialVsControl(const ScenarioConfig& config) {
  FleetScenario scenario(config);

  StreamGroup fleet(Opts());
  scenario.AddStreamsTo(fleet);
  EXPECT_TRUE(fleet.WatchAllPairs().ok());

  StreamGroup control(Opts());
  scenario.AddStreamsTo(control);
  WatchAllExplicitly(control);
  if (testing::Test::HasFatalFailure()) return 0;

  size_t total = 0;
  for (int tick = 0; tick < config.ticks; ++tick) {
    scenario.FeedTick(tick, {&fleet, &control});
    if (testing::Test::HasFatalFailure()) return 0;
    std::vector<PairEvent> fe = fleet.Poll();
    std::vector<PairEvent> ce = control.Poll();
    ExpectSameEvents(fe, ce, ("tick " + std::to_string(tick)).c_str());
    if (testing::Test::HasFatalFailure()) return 0;
    total += fe.size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// 64-stream matrix: every engine kind x every generator family
// ---------------------------------------------------------------------------

class FleetMatrixTest
    : public testing::TestWithParam<std::tuple<EngineKind, int>> {};

TEST_P(FleetMatrixTest, FleetEventsMatchBruteForce) {
  ScenarioConfig config;
  config.kind = std::get<0>(GetParam());
  config.family = std::get<1>(GetParam());
  config.num_streams = 64;
  config.ticks = 6;
  config.seed = 100 + static_cast<uint64_t>(config.family);
  const size_t events = RunDifferentialVsControl(config);
  if (testing::Test::HasFatalFailure()) return;
  // A scenario that never fires is not a differential test: the movers and
  // nested pairs must generate real transitions.
  EXPECT_GT(events, 0u) << "scenario produced no events to compare";
}

std::string MatrixCaseName(
    const testing::TestParamInfo<std::tuple<EngineKind, int>>& info) {
  static const char* kFamilies[] = {"disk",     "square", "ellipse", "circle",
                                    "clusters", "drift",  "spiral"};
  std::string kind = EngineKindName(std::get<0>(info.param));
  kind.erase(std::remove(kind.begin(), kind.end(), '-'), kind.end());
  return kind + "_" + kFamilies[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllFamilies, FleetMatrixTest,
    testing::Combine(testing::ValuesIn(AllEngineKinds().begin(),
                                       AllEngineKinds().end()),
                     testing::Range(0, kNumFamilies)),
    MatrixCaseName);

// ---------------------------------------------------------------------------
// Larger configs and remote/churn coverage
// ---------------------------------------------------------------------------

TEST(FleetDifferentialTest, FiveHundredTwelveStreamsMixedFamilies) {
  ScenarioConfig config;
  config.num_streams = 512;
  config.family = -1;  // Mix all seven families across the fleet.
  config.ticks = 3;
  config.points_per_tick = 16;
  config.seed = 42;
  const size_t events = RunDifferentialVsControl(config);
  if (testing::Test::HasFatalFailure()) return;
  EXPECT_GT(events, 0u);
}

TEST(FleetDifferentialTest, RemoteStreamsMixedIn) {
  ScenarioConfig config;
  config.num_streams = 64;
  config.family = -1;
  config.ticks = 6;
  config.remote_every = 4;  // Streams 1, 5, 9, ... are decoded views.
  config.seed = 7;
  const size_t events = RunDifferentialVsControl(config);
  if (testing::Test::HasFatalFailure()) return;
  EXPECT_GT(events, 0u);
}

TEST(FleetDifferentialTest, RemoteShrinkFiresGainedEventsIdentically) {
  // Local hulls only grow, so separability-lost is forever — unless the
  // stream is remote and its producer restarts small. The wholesale view
  // replacement must fire regained/ended events identically on both paths.
  StreamGroup fleet(Opts());
  StreamGroup control(Opts());
  for (StreamGroup* g : {&fleet, &control}) {
    ASSERT_TRUE(g->AddStream("a", EngineKind::kAdaptive).ok());
    ASSERT_TRUE(g->AddRemoteStream("b").ok());
  }
  ASSERT_TRUE(fleet.WatchAllPairs().ok());
  ASSERT_TRUE(control.WatchPair("a", "b").ok());

  DiskGenerator near(11);
  std::vector<Point2> a_pts = near.Take(64);
  auto big = MakeEngine(EngineKind::kAdaptive, EngineOptions{.hull = Opts()});
  std::vector<Point2> b_pts = near.Take(64);  // Same disk: overlapping.
  big->InsertBatch(b_pts);
  const std::string overlap_frame = big->EncodeView();
  for (StreamGroup* g : {&fleet, &control}) {
    ASSERT_TRUE(g->InsertBatch("a", a_pts).ok());
    ASSERT_TRUE(g->UpdateRemoteStream("b", overlap_frame).ok());
  }
  ExpectSameEvents(fleet.Poll(), control.Poll(), "overlap poll");

  // Producer restart: a tiny far-away summary replaces the view.
  auto small = MakeEngine(EngineKind::kAdaptive, EngineOptions{.hull = Opts()});
  DiskGenerator far(12, 0.1, Point2{50, 50});
  small->InsertBatch(far.Take(32));
  const std::string far_frame = small->EncodeView();
  for (StreamGroup* g : {&fleet, &control}) {
    ASSERT_TRUE(g->UpdateRemoteStream("b", far_frame).ok());
  }
  std::vector<PairEvent> fe = fleet.Poll();
  ExpectSameEvents(fe, control.Poll(), "shrink poll");
  bool gained = false;
  for (const PairEvent& e : fe) {
    if (e.kind == PairEvent::Kind::kSeparabilityGained) gained = true;
  }
  EXPECT_TRUE(gained) << "shrinking remote view should regain separability";
}

TEST(FleetDifferentialTest, MidRunChurnMatchesBruteForce) {
  // Interleaves feeding with stream add/remove while both paths poll.
  // After each removal the control group re-registers nothing (its watches
  // on the removed stream are retired); after each add, the control gains
  // explicit watches on every new pair — the fleet tracks both implicitly.
  const uint64_t seed = 99;
  ScenarioConfig config;
  config.num_streams = 64;
  config.family = -1;
  config.seed = seed;
  FleetScenario scenario(config);

  StreamGroup fleet(Opts());
  scenario.AddStreamsTo(fleet);
  ASSERT_TRUE(fleet.WatchAllPairs().ok());
  StreamGroup control(Opts());
  scenario.AddStreamsTo(control);
  WatchAllExplicitly(control);

  Rng rng(seed);
  int next_id = config.num_streams;
  for (int tick = 0; tick < 8; ++tick) {
    scenario.FeedTick(tick % config.ticks, {&fleet, &control});
    if (tick % 2 == 0) {
      // Remove a random surviving original stream.
      const std::vector<std::string> names = fleet.StreamNames();
      const std::string victim = names[rng.UniformInt(names.size())];
      ASSERT_TRUE(fleet.RemoveStream(victim).ok());
      ASSERT_TRUE(control.RemoveStream(victim).ok());
    } else {
      // Add a fresh stream placed to overlap the grid, fed immediately.
      const std::string name = "added" + std::to_string(next_id++);
      ASSERT_TRUE(fleet.AddStream(name, EngineKind::kUniform).ok());
      ASSERT_TRUE(control.AddStream(name, EngineKind::kUniform).ok());
      for (const std::string& other : control.StreamNames()) {
        if (other != name) {
          ASSERT_TRUE(control.WatchPair(name, other).ok());
        }
      }
      DiskGenerator g(seed + static_cast<uint64_t>(tick), 1.5,
                      Point2{2.6 * (tick % 8), 2.6});
      const std::vector<Point2> pts = g.Take(32);
      ASSERT_TRUE(fleet.InsertBatch(name, pts).ok());
      ASSERT_TRUE(control.InsertBatch(name, pts).ok());
    }
    ExpectSameEvents(fleet.Poll(), control.Poll(),
                     ("churn tick " + std::to_string(tick)).c_str());
    if (testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// 2k streams: pruned fleet vs the force-all-candidates ground truth
// ---------------------------------------------------------------------------

TEST(FleetDifferentialTest, TwoThousandStreamsPrunedMatchesForceAll) {
  // At 2k streams an explicit watch list (2M pairs) is too expensive to
  // build per run, so the oracle is the fleet itself with pruning disabled:
  // every live pair goes through the narrow phase. Identical events prove
  // the broad phase never dropped a pair whose certified predicate could
  // have changed.
  ScenarioConfig config;
  config.num_streams = 2048;
  config.family = -1;
  config.ticks = 2;
  config.points_per_tick = 10;
  config.seed = 5;
  FleetScenario scenario(config);

  StreamGroup pruned(Opts());
  scenario.AddStreamsTo(pruned);
  ASSERT_TRUE(pruned.WatchAllPairs().ok());

  StreamGroup forced(Opts());
  scenario.AddStreamsTo(forced);
  ASSERT_TRUE(forced.WatchAllPairs().ok());
  forced.set_fleet_force_all_candidates(true);

  size_t total = 0;
  for (int tick = 0; tick < config.ticks; ++tick) {
    scenario.FeedTick(tick, {&pruned, &forced});
    if (testing::Test::HasFatalFailure()) return;
    std::vector<PairEvent> pe = pruned.Poll();
    std::vector<PairEvent> ge = forced.Poll();
    ExpectSameEvents(pe, ge, ("2k tick " + std::to_string(tick)).c_str());
    if (testing::Test::HasFatalFailure()) return;
    total += pe.size();
  }
  EXPECT_GT(total, 0u);

  // And the pruning must have been real: the candidate set a fraction of
  // the 2M possible pairs, while the forced oracle evaluated all of them.
  const FleetPollStats& ps = pruned.fleet_stats();
  const FleetPollStats& gs = forced.fleet_stats();
  EXPECT_EQ(gs.last_pairs_evaluated, gs.last_possible_pairs);
  EXPECT_LT(ps.last_candidates * 10, ps.last_possible_pairs)
      << "broad phase pruned less than 90% on a sparse grid fleet";
}

// ---------------------------------------------------------------------------
// Reports, stats, and the explicit+fleet interaction
// ---------------------------------------------------------------------------

TEST(FleetWatchTest, ReportsAgreeWithExplicitGroups) {
  // Report() is unaffected by watch mode; spot-check that a fleet-watched
  // group and a control group over identical data return identical
  // certified intervals.
  ScenarioConfig config;
  config.num_streams = 16;
  config.ticks = 2;
  FleetScenario scenario(config);
  StreamGroup fleet(Opts());
  scenario.AddStreamsTo(fleet);
  ASSERT_TRUE(fleet.WatchAllPairs().ok());
  StreamGroup control(Opts());
  scenario.AddStreamsTo(control);
  for (int tick = 0; tick < config.ticks; ++tick) {
    scenario.FeedTick(tick, {&fleet, &control});
  }
  (void)fleet.Poll();
  for (int i = 0; i < 15; ++i) {
    PairReport a, b;
    ASSERT_TRUE(fleet.Report(StreamName(i), StreamName(i + 1), &a).ok());
    ASSERT_TRUE(control.Report(StreamName(i), StreamName(i + 1), &b).ok());
    EXPECT_EQ(a.distance.lo, b.distance.lo);
    EXPECT_EQ(a.distance.hi, b.distance.hi);
    EXPECT_EQ(a.separable, b.separable);
    EXPECT_EQ(a.a_contains_b, b.a_contains_b);
    EXPECT_EQ(a.b_contains_a, b.b_contains_a);
  }
}

TEST(FleetWatchTest, QuiescentPollsCostNothing) {
  ScenarioConfig config;
  config.num_streams = 64;
  config.ticks = 1;
  FleetScenario scenario(config);
  StreamGroup fleet(Opts());
  scenario.AddStreamsTo(fleet);
  ASSERT_TRUE(fleet.WatchAllPairs().ok());
  scenario.FeedTick(0, {&fleet});
  (void)fleet.Poll();
  const uint64_t mats = fleet.view_materializations();
  const uint64_t sweeps = fleet.broad_phase_stats().sweeps;

  // No data changed: the poll must re-derive no geometry and re-sweep
  // nothing — the generation-tagged skip and the candidate cache in one.
  std::vector<PairEvent> events = fleet.Poll();
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(fleet.view_materializations(), mats);
  EXPECT_EQ(fleet.broad_phase_stats().sweeps, sweeps);
  EXPECT_EQ(fleet.fleet_stats().last_streams_refreshed, 0u);
  EXPECT_GE(fleet.broad_phase_stats().cached_polls, 1u);
}

TEST(FleetWatchTest, ExplicitWatchAndFleetBothReport) {
  // A pair that is both explicitly watched and fleet-covered reports
  // through both paths (documented behavior): one event per path.
  StreamGroup group(Opts());
  ASSERT_TRUE(group.AddStream("a").ok());
  ASSERT_TRUE(group.AddStream("b").ok());
  ASSERT_TRUE(group.WatchPair("a", "b").ok());
  ASSERT_TRUE(group.WatchAllPairs().ok());
  DiskGenerator g(3);
  std::vector<Point2> pts = g.Take(32);
  ASSERT_TRUE(group.InsertBatch("a", pts).ok());
  ASSERT_TRUE(group.InsertBatch("b", g.Take(32)).ok());  // Same disk.
  std::vector<PairEvent> events = group.Poll();
  // Overlapping identical disks: separability lost, certified, twice.
  int sep_lost = 0;
  for (const PairEvent& e : events) {
    if (e.kind == PairEvent::Kind::kSeparabilityLost) ++sep_lost;
  }
  EXPECT_EQ(sep_lost, 2);
}

TEST(FleetWatchTest, PredicateScopedWatchSets) {
  // Separability-only fleet: containment transitions must not fire.
  StreamGroup group(Opts());
  ASSERT_TRUE(group.AddStream("big").ok());
  ASSERT_TRUE(group.AddStream("small").ok());
  ASSERT_TRUE(
      group.WatchAllPairs(FleetWatchOptions{.separability = true,
                                            .containment = false})
          .ok());
  DiskGenerator big(21, 4.0);
  DiskGenerator small(22, 0.05);
  ASSERT_TRUE(group.InsertBatch("big", big.Take(256)).ok());
  ASSERT_TRUE(group.InsertBatch("small", small.Take(32)).ok());
  std::vector<PairEvent> events = group.Poll();
  for (const PairEvent& e : events) {
    EXPECT_NE(e.predicate, PairEvent::Predicate::kContainment)
        << EventToString(e);
  }
  // The separability family still works (nested disks: not separable).
  bool sep_lost = false;
  for (const PairEvent& e : events) {
    if (e.kind == PairEvent::Kind::kSeparabilityLost) sep_lost = true;
  }
  EXPECT_TRUE(sep_lost);

  // Disabling every family is a configuration error.
  EXPECT_FALSE(group
                   .WatchAllPairs(FleetWatchOptions{.separability = false,
                                                    .containment = false})
                   .ok());
}

// ---------------------------------------------------------------------------
// RemoveStream lifecycle
// ---------------------------------------------------------------------------

TEST(FleetRemoveStreamTest, TenThousandStreamsSurviveAThousandRemovals) {
  // Well-separated fleet: after the baseline poll, nothing ever fires —
  // unless removal corrupts pair state. 1k removals interleaved with polls
  // must produce zero events and never reference a removed stream.
  StreamGroup fleet(Opts());
  const int n = 10000;
  Rng rng(123);
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(fleet.AddStream(StreamName(i), EngineKind::kUniform).ok());
  }
  ASSERT_TRUE(fleet.WatchAllPairs().ok());
  for (int i = 0; i < n; ++i) {
    // A tiny cluster per stream, 100 apart: no pair interacts.
    const double cx = (i % 100) * 100.0, cy = (i / 100) * 100.0;
    DiskGenerator g(7000 + static_cast<uint64_t>(i), 0.5, Point2{cx, cy});
    ASSERT_TRUE(fleet.InsertBatch(StreamName(i), g.Take(8)).ok());
  }
  EXPECT_TRUE(fleet.Poll().empty());
  EXPECT_EQ(fleet.fleet_stats().last_streams, static_cast<uint64_t>(n));

  std::set<std::string> removed;
  for (int round = 0; round < 10; ++round) {
    for (int k = 0; k < 100; ++k) {
      std::string victim;
      do {
        victim = StreamName(static_cast<int>(rng.UniformInt(n)));
      } while (removed.count(victim) > 0);
      ASSERT_TRUE(fleet.RemoveStream(victim).ok());
      removed.insert(victim);
    }
    const std::vector<PairEvent> events = fleet.Poll();
    for (const PairEvent& e : events) {
      EXPECT_EQ(removed.count(e.first), 0u) << EventToString(e);
      EXPECT_EQ(removed.count(e.second), 0u) << EventToString(e);
    }
    EXPECT_TRUE(events.empty()) << "separated fleet fired "
                                << events.size() << " stale events";
  }
  EXPECT_EQ(fleet.fleet_stats().last_streams, static_cast<uint64_t>(n - 1000));
  EXPECT_EQ(fleet.StreamNames().size(), static_cast<size_t>(n - 1000));
}

TEST(FleetRemoveStreamTest, SlotReuseCannotResurrectPairState) {
  // Streams a/b overlap and fire events; removing a frees its broad-phase
  // slot. A new stream c reuses that slot — if a's pair state survived,
  // c would inherit "inseparable from b" and fire a spurious regained
  // event. It must instead start from the fleet baseline.
  StreamGroup fleet(Opts());
  ASSERT_TRUE(fleet.AddStream("a").ok());
  ASSERT_TRUE(fleet.AddStream("b").ok());
  ASSERT_TRUE(fleet.WatchAllPairs().ok());
  DiskGenerator g(31);
  ASSERT_TRUE(fleet.InsertBatch("a", g.Take(32)).ok());
  ASSERT_TRUE(fleet.InsertBatch("b", g.Take(32)).ok());  // Overlapping.
  std::vector<PairEvent> events = fleet.Poll();
  bool lost = false;
  for (const PairEvent& e : events) {
    if (e.kind == PairEvent::Kind::kSeparabilityLost) lost = true;
  }
  ASSERT_TRUE(lost);

  ASSERT_TRUE(fleet.RemoveStream("a").ok());
  ASSERT_TRUE(fleet.AddStream("c").ok());
  DiskGenerator far(32, 0.5, Point2{100, 100});
  ASSERT_TRUE(fleet.InsertBatch("c", far.Take(16)).ok());
  // c is far from b: certified separable — which is the baseline, so no
  // event may fire (a kSeparabilityGained here would be resurrected state).
  EXPECT_TRUE(fleet.Poll().empty());

  // Removing an unknown stream fails cleanly; re-removal too.
  EXPECT_FALSE(fleet.RemoveStream("a").ok());
  EXPECT_FALSE(fleet.RemoveStream("nope").ok());
}

TEST(FleetRemoveStreamTest, RemovalRetiresExplicitWatches) {
  StreamGroup group(Opts());
  ASSERT_TRUE(group.AddStream("a").ok());
  ASSERT_TRUE(group.AddStream("b").ok());
  ASSERT_TRUE(group.AddStream("c").ok());
  ASSERT_TRUE(group.WatchPair("a", "b").ok());
  ASSERT_TRUE(group.WatchPair("b", "c").ok());
  DiskGenerator g(41);
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(group.InsertBatch(name, g.Take(32)).ok());  // All overlap.
  }
  EXPECT_FALSE(group.Poll().empty());
  ASSERT_TRUE(group.RemoveStream("b").ok());
  // Both watches involving b are gone; nothing references it again.
  for (int i = 0; i < 3; ++i) {
    for (const PairEvent& e : group.Poll()) {
      EXPECT_NE(e.first, "b") << EventToString(e);
      EXPECT_NE(e.second, "b") << EventToString(e);
    }
  }
  // b's name can be reused with a clean baseline.
  ASSERT_TRUE(group.AddStream("b").ok());
  ASSERT_TRUE(group.WatchPair("a", "b").ok());
}

// ---------------------------------------------------------------------------
// Parallel determinism
// ---------------------------------------------------------------------------

// Full-field equality — byte-identical, order included.
void ExpectIdenticalSequences(const std::vector<PairEvent>& a,
                              const std::vector<PairEvent>& b,
                              const char* where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(EventKey(a[i]), EventKey(b[i]))
        << where << " event " << i << ": " << EventToString(a[i]) << " vs "
        << EventToString(b[i]);
  }
}

TEST(FleetParallelTest, PollIsByteIdenticalAcrossThreadCounts) {
  // The same scenario on a no-pool group and on pools of {1, 2, 8}
  // threads: the full event sequences (order included) must be identical,
  // and every event must appear exactly once. Ingestion here is
  // synchronous (InsertBatch) so engine state is trivially identical; the
  // parallelism under test is the fleet poll's fan-out itself.
  const size_t kThreads[] = {0, 1, 2, 8};  // 0 = never SetParallelism.
  std::vector<std::unique_ptr<StreamGroup>> groups;
  std::vector<StreamGroup*> raw;
  for (size_t t : kThreads) {
    auto g = std::make_unique<StreamGroup>(Opts());
    if (t > 0) g->SetParallelism(t);
    raw.push_back(g.get());
    groups.push_back(std::move(g));
  }
  ScenarioConfig config;
  config.num_streams = 128;
  config.family = -1;
  config.ticks = 4;
  config.seed = 77;
  FleetScenario scenario(config);
  for (StreamGroup* g : raw) {
    scenario.AddStreamsTo(*g);
    ASSERT_TRUE(g->WatchAllPairs().ok());
  }

  for (int tick = 0; tick < config.ticks; ++tick) {
    scenario.FeedTick(tick, raw);
    if (testing::Test::HasFatalFailure()) return;
    const std::vector<PairEvent> reference = raw[0]->Poll();

    // Exactly-once: no event duplicated within one poll's output.
    std::set<std::tuple<uint64_t, std::string, std::string,
                        PairEvent::Predicate, PairEvent::Kind>>
        unique;
    for (const PairEvent& e : reference) {
      EXPECT_TRUE(
          unique.insert({e.poll_index, e.first, e.second, e.predicate, e.kind})
              .second)
          << "duplicate event: " << EventToString(e);
    }

    for (size_t gi = 1; gi < raw.size(); ++gi) {
      ExpectIdenticalSequences(
          raw[gi]->Poll(), reference,
          ("tick " + std::to_string(tick) + " threads=" +
           std::to_string(kThreads[gi]))
              .c_str());
      if (testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(FleetParallelTest, AsyncIngestThenFleetPoll) {
  // Fleet polling composes with async ingestion: the poll's implicit Flush
  // quiesces the engines, then the same pool runs the candidate fan-out.
  StreamGroup parallel_group(Opts());
  parallel_group.SetParallelism(4);
  StreamGroup serial_group(Opts());
  for (StreamGroup* g : {&parallel_group, &serial_group}) {
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(g->AddStream(StreamName(i)).ok());
    }
    ASSERT_TRUE(g->WatchAllPairs().ok());
  }
  for (int tick = 0; tick < 3; ++tick) {
    for (int i = 0; i < 32; ++i) {
      DiskGenerator g(500 + static_cast<uint64_t>(i * 31 + tick), 1.0,
                      Point2{(i % 8) * 2.2 + 0.3 * tick * (i % 3 == 0),
                             (i / 8) * 2.2});
      const std::vector<Point2> pts = g.Take(24);
      ASSERT_TRUE(parallel_group
                      .InsertBatchAsync(StreamName(i),
                                        std::vector<Point2>(pts))
                      .ok());
      ASSERT_TRUE(serial_group.InsertBatch(StreamName(i), pts).ok());
    }
    ExpectIdenticalSequences(parallel_group.Poll(), serial_group.Poll(),
                             ("async tick " + std::to_string(tick)).c_str());
    if (testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace streamhull
