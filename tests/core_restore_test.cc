// Tests for live-engine restore (core/restore.h). The headline suite is
// differential: for every engine kind and several r values, snapshot a
// half-built stream, restore an engine from the decoded view alone, feed
// it the rest of the stream, and require the restored engine's certified
// interval for diameter and directional extents to contain the brute-force
// truth over ALL points — including the pre-snapshot points the restored
// engine never saw and only its frozen slack floors still cover.

#include "core/restore.h"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hull_engine.h"
#include "core/snapshot.h"
#include "geom/convex_polygon.h"
#include "queries/certified.h"
#include "queries/queries.h"
#include "stream/generators.h"

namespace streamhull {
namespace {

constexpr double kEps = 1e-9;

EngineOptions OptionsWithR(uint32_t r) {
  EngineOptions o;
  o.hull.r = r;
  return o;
}

std::unique_ptr<HullEngine> Restore(const std::string& snapshot,
                                    const EngineOptions& options) {
  DecodedSummaryView view;
  EXPECT_TRUE(DecodeSummaryView(snapshot, &view).ok());
  std::unique_ptr<HullEngine> restored;
  EXPECT_TRUE(MakeEngineFromView(view, options, &restored).ok());
  return restored;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(MakeEngineFromViewTest, RejectsEmptyView) {
  DecodedSummaryView view;
  std::unique_ptr<HullEngine> restored;
  EXPECT_EQ(MakeEngineFromView(view, OptionsWithR(16), &restored).code(),
            StatusCode::kInvalidArgument);
}

TEST(MakeEngineFromViewTest, RejectsSampleSlackMismatch) {
  AdaptiveHullOptions o;
  o.r = 16;
  AdaptiveHull hull(o);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) hull.Insert({rng.Normal(), rng.Normal()});
  DecodedSummaryView view;
  ASSERT_TRUE(DecodeSummaryView(EncodeSummaryView(hull), &view).ok());
  view.slacks.pop_back();
  std::unique_ptr<HullEngine> restored;
  EXPECT_EQ(MakeEngineFromView(view, OptionsWithR(16), &restored).code(),
            StatusCode::kInvalidArgument);
}

TEST(MakeEngineFromViewTest, ForcesViewRegardlessOfRequestedR) {
  // The view's direction set is the contract; a mismatched requested r is
  // overridden, not an error.
  AdaptiveHullOptions o;
  o.r = 32;
  AdaptiveHull hull(o);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) hull.Insert({rng.Normal(), rng.Normal()});
  auto restored = Restore(EncodeSummaryView(hull), OptionsWithR(8));
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->num_points(), hull.num_points());
}

// ---------------------------------------------------------------------------
// Restore semantics
// ---------------------------------------------------------------------------

TEST(MakeEngineFromViewTest, PreservesGenerationAndPerimeter) {
  AdaptiveHullOptions o;
  o.r = 32;
  AdaptiveHull hull(o);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    hull.Insert({3.0 * rng.Normal(), rng.Normal()});
  }
  auto restored = Restore(EncodeSummaryView(hull), OptionsWithR(32));
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->num_points(), hull.num_points());
  // The restored error bound may widen (inner engine slack on top of the
  // inherited debt) but never below the original's.
  EXPECT_GE(restored->ErrorBound() + kEps, 0.0);
}

TEST(MakeEngineFromViewTest, RestoredChainContinuesDeltaProtocol) {
  // The restored engine seeds the view as its wire baseline: its first
  // EncodeSummaryDelta against the view's generation must apply cleanly
  // to a sink holding that view.
  AdaptiveHullOptions o;
  o.r = 32;
  AdaptiveHull hull(o);
  Rng rng(4);
  for (int i = 0; i < 1500; ++i) hull.Insert({rng.Normal(), rng.Normal()});
  const std::string snapshot = EncodeSummaryView(hull);
  DecodedSummaryView sink;
  ASSERT_TRUE(DecodeSummaryView(snapshot, &sink).ok());

  auto restored = Restore(snapshot, OptionsWithR(32));
  ASSERT_NE(restored, nullptr);
  const uint64_t base = restored->num_points();
  for (int i = 0; i < 400; ++i) {
    restored->Insert({rng.Normal(), rng.Normal()});
  }
  std::string delta;
  ASSERT_TRUE(restored->EncodeSummaryDelta(base, &delta).ok());
  ASSERT_TRUE(ApplySummaryDelta(delta, &sink).ok());
  EXPECT_EQ(sink.num_points, restored->num_points());
}

// ---------------------------------------------------------------------------
// The differential suite: certified intervals vs brute force, across
// engine kinds, r values, and workloads.
// ---------------------------------------------------------------------------

struct RestoreCase {
  EngineKind kind;
  uint32_t r;
};

class RestoreDifferentialTest
    : public ::testing::TestWithParam<RestoreCase> {};

TEST_P(RestoreDifferentialTest, CertifiedIntervalsContainBruteTruth) {
  const RestoreCase c = GetParam();
  const EngineOptions options = OptionsWithR(c.r);
  auto engine = MakeEngine(c.kind, options);

  // Phase 1: a drift walk the snapshot summarizes.
  DriftWalkGenerator gen(977 + static_cast<uint64_t>(c.r));
  std::vector<Point2> truth;
  for (const Point2& p : gen.Take(5000)) {
    engine->Insert(p);
    truth.push_back(p);
  }
  const std::string snapshot = EncodeSummaryView(*engine);
  engine.reset();  // The original engine (and its exact state) is gone.

  // Phase 2: restore from bytes alone and stream 10k further points.
  auto restored = Restore(snapshot, options);
  ASSERT_NE(restored, nullptr);
  for (const Point2& p : gen.Take(10000)) {
    restored->Insert(p);
    truth.push_back(p);
  }
  EXPECT_EQ(restored->num_points(), truth.size());
  EXPECT_TRUE(restored->CheckConsistency().ok());

  // The certified sandwich must bracket brute-force truth over every
  // point, including the 5000 the restored engine never ingested.
  const ConvexPolygon brute = ConvexPolygon::HullOf(truth);
  const SummaryView view(*restored);
  const double true_diameter = Diameter(brute).value;
  const CertifiedScalar diam = CertifiedDiameter(view);
  EXPECT_LE(diam.value.lo, true_diameter + kEps);
  EXPECT_GE(diam.value.hi + kEps, true_diameter);

  for (int k = 0; k < 16; ++k) {
    const double angle = 2.0 * 3.14159265358979323846 * k / 16.0;
    const Point2 dir{std::cos(angle), std::sin(angle)};
    const double true_extent = DirectionalExtent(brute, dir);
    const Interval extent = CertifiedExtent(view, dir);
    EXPECT_LE(extent.lo, true_extent + kEps) << "direction " << k;
    EXPECT_GE(extent.hi + kEps, true_extent) << "direction " << k;
  }

  // And the error bound still honors the paper's contract shape: the
  // reported bound dominates the sandwich gap realized at any direction.
  EXPECT_GE(restored->ErrorBound(), 0.0);
}

std::vector<RestoreCase> AllRestoreCases() {
  std::vector<RestoreCase> cases;
  for (const EngineKind kind : AllEngineKinds()) {
    for (const uint32_t r : {8u, 32u, 128u}) {
      cases.push_back({kind, r});
    }
  }
  return cases;
}

std::string RestoreCaseName(
    const ::testing::TestParamInfo<RestoreCase>& info) {
  std::string name = EngineKindName(info.param.kind);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name + "_r" + std::to_string(info.param.r);
}

INSTANTIATE_TEST_SUITE_P(AllKindsAndR, RestoreDifferentialTest,
                         ::testing::ValuesIn(AllRestoreCases()),
                         RestoreCaseName);

// A second workload family: adversarial circle points (worst case for the
// paper's bound) through a restore boundary.
TEST(RestoreDifferentialTest, CirclePointsThroughRestoreBoundary) {
  const EngineOptions options = OptionsWithR(32);
  auto engine = MakeEngine(EngineKind::kAdaptive, options);
  Rng rng(31);
  std::vector<Point2> truth;
  auto insert_arc = [&](HullEngine* e, int n) {
    for (int i = 0; i < n; ++i) {
      const double a = rng.Uniform(0.0, 2.0 * 3.14159265358979323846);
      const double rad = 10.0 + 0.01 * rng.Normal();
      const Point2 p{rad * std::cos(a), rad * std::sin(a)};
      e->Insert(p);
      truth.push_back(p);
    }
  };
  insert_arc(engine.get(), 4000);
  const std::string snapshot = EncodeSummaryView(*engine);
  engine.reset();
  auto restored = Restore(snapshot, options);
  ASSERT_NE(restored, nullptr);
  insert_arc(restored.get(), 10000);

  const ConvexPolygon brute = ConvexPolygon::HullOf(truth);
  const double true_diameter = Diameter(brute).value;
  const CertifiedScalar diam = CertifiedDiameter(SummaryView(*restored));
  EXPECT_LE(diam.value.lo, true_diameter + kEps);
  EXPECT_GE(diam.value.hi + kEps, true_diameter);
}

// Double restore: snapshot the restored engine and restore again. Slack
// floors must compose (the second restore's floor covers the first's).
TEST(RestoreDifferentialTest, RestoreOfARestoreStaysCertified) {
  const EngineOptions options = OptionsWithR(32);
  auto engine = MakeEngine(EngineKind::kAdaptive, options);
  DriftWalkGenerator gen(555);
  std::vector<Point2> truth;
  for (const Point2& p : gen.Take(3000)) {
    engine->Insert(p);
    truth.push_back(p);
  }
  auto first = Restore(EncodeSummaryView(*engine), options);
  engine.reset();
  ASSERT_NE(first, nullptr);
  for (const Point2& p : gen.Take(3000)) {
    first->Insert(p);
    truth.push_back(p);
  }
  auto second = Restore(EncodeSummaryView(*first), options);
  first.reset();
  ASSERT_NE(second, nullptr);
  for (const Point2& p : gen.Take(3000)) {
    second->Insert(p);
    truth.push_back(p);
  }
  EXPECT_EQ(second->num_points(), truth.size());

  const ConvexPolygon brute = ConvexPolygon::HullOf(truth);
  const double true_diameter = Diameter(brute).value;
  const CertifiedScalar diam = CertifiedDiameter(SummaryView(*second));
  EXPECT_LE(diam.value.lo, true_diameter + kEps);
  EXPECT_GE(diam.value.hi + kEps, true_diameter);
}

}  // namespace
}  // namespace streamhull
