// Differential suite for the sliding-window engine: the certified
// [Inner(), Outer()] sandwich must bracket the brute-force hull of exactly
// the last-W points (count mode) or the strictly-in-window points (time
// mode), across generators x window sizes x bucket counts; expiry
// adversaries (everything expires, window larger than the stream, duplicate
// timestamps); batch-vs-incremental bit identity; and the generation-epoch
// wire contract — v2/v3 frames with generation != num_points round-trip,
// chain through a DeltaSender into a remote StreamGroup stream, and reject
// replayed or stale deltas.

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hull_engine.h"
#include "core/restore.h"
#include "core/snapshot.h"
#include "core/windowed_hull.h"
#include "geom/direction.h"
#include "multi/stream_group.h"
#include "server/delta_sender.h"
#include "stream/generators.h"

namespace streamhull {
namespace {

EngineOptions WindowedOpts(uint64_t window, uint32_t buckets,
                           uint32_t r = 16) {
  EngineOptions o;
  o.hull.r = r;
  o.window_points = window;
  o.window_buckets = buckets;
  return o;
}

struct NamedStream {
  std::string name;
  std::vector<Point2> points;
};

// The seven stream shapes of the differential sweep: stationary boundaries
// (disk, square, ellipse, circle), regime change (changing-ellipse),
// clusters, and a drifting walk (where expiry visibly moves the hull).
std::vector<NamedStream> TestStreams(size_t n) {
  std::vector<NamedStream> streams;
  streams.push_back({"disk", DiskGenerator(11).Take(n)});
  streams.push_back({"square", SquareGenerator(12, 0.37).Take(n)});
  streams.push_back({"ellipse", EllipseGenerator(13, 16.0, 0.23).Take(n)});
  streams.push_back(
      {"changing", ChangingEllipseGenerator(14, n / 2, 8.0).Take(n)});
  streams.push_back({"circle", CircleGenerator(15, 64).Take(n)});
  streams.push_back({"clusters", ClusterGenerator(16, 4).Take(n)});
  streams.push_back({"drift", DriftWalkGenerator(17).Take(n)});
  return streams;
}

// Certification oracle: per base direction, the engine's inner support must
// not exceed — and inner + slack must cover — the brute-force support of
// exactly the given window points.
void ExpectSandwichCertifies(const WindowedHullEngine& engine,
                             std::span<const Point2> window,
                             const std::string& context) {
  const std::vector<HullSample> samples = engine.Samples();
  const std::vector<double> slacks = engine.SampleSlacks();
  if (window.empty()) return;
  ASSERT_FALSE(samples.empty()) << context;
  ASSERT_EQ(samples.size(), size_t{engine.r()}) << context;
  ASSERT_EQ(slacks.size(), samples.size()) << context;
  for (size_t j = 0; j < samples.size(); ++j) {
    const Point2 u = samples[j].direction.ToVector();
    double brute = Dot(window[0], u);
    for (const Point2& p : window) brute = std::max(brute, Dot(p, u));
    const double inner = Dot(samples[j].point, u);
    const double tolerance = 1e-9 * std::max(1.0, std::fabs(brute));
    // Inner stays inside the true window hull: the merged sample is a
    // genuine in-window point, so this holds with no slop at all.
    EXPECT_LE(inner, brute + tolerance) << context << " direction " << j;
    // Inner + slack covers every in-window point.
    EXPECT_GE(inner + slacks[j], brute - tolerance)
        << context << " direction " << j;
  }
}

TEST(WindowedHullTest, CountWindowCertifiesLastWPoints) {
  const size_t kStream = 1200;
  const uint64_t kWindows[] = {64, 256, 1000};
  const uint32_t kBuckets[] = {1, 4, 16};
  for (const NamedStream& stream : TestStreams(kStream)) {
    for (uint64_t window : kWindows) {
      for (uint32_t buckets : kBuckets) {
        WindowedHullEngine engine(WindowedOpts(window, buckets));
        uint64_t last_generation = 0;
        for (size_t i = 0; i < stream.points.size(); ++i) {
          engine.Insert(stream.points[i]);
          ASSERT_GT(engine.Generation(), last_generation)
              << stream.name << " W=" << window << " K=" << buckets;
          last_generation = engine.Generation();
          const size_t in_window =
              std::min<size_t>(i + 1, static_cast<size_t>(window));
          ASSERT_EQ(engine.num_points(), in_window);
          ASSERT_GE(engine.Generation(), engine.num_points());
          // Check the sandwich at a stride (and at the very end): the
          // oracle is O(W * r) per check.
          if (i % 149 == 0 || i + 1 == stream.points.size()) {
            const std::string context = stream.name + " W=" +
                                        std::to_string(window) + " K=" +
                                        std::to_string(buckets) + " i=" +
                                        std::to_string(i);
            ExpectSandwichCertifies(
                engine,
                std::span<const Point2>(&stream.points[i + 1 - in_window],
                                        in_window),
                context);
            ASSERT_TRUE(engine.CheckConsistency().ok()) << context;
          }
        }
        if (stream.points.size() > window) {
          // Something expired, so the epoch outran the point count.
          EXPECT_GT(engine.Generation(), engine.num_points());
          // A bucket fully exits once the stream outruns window + bucket
          // capacity; before that the oldest bucket only straddles.
          const uint64_t capacity = (window + buckets - 1) / buckets;
          if (stream.points.size() > window + capacity) {
            EXPECT_GT(engine.buckets_dropped(), 0u);
          }
        }
      }
    }
  }
}

TEST(WindowedHullTest, TimeWindowCertifiesStrictlyInWindowPoints) {
  const double kWindowSeconds = 2.0;
  for (const NamedStream& stream : TestStreams(600)) {
    for (uint32_t buckets : {1u, 4u, 16u}) {
      EngineOptions o;
      o.hull.r = 16;
      o.window_seconds = kWindowSeconds;
      o.window_buckets = buckets;
      WindowedHullEngine engine(o);
      std::vector<std::pair<double, Point2>> timed;
      double t = 0;
      uint64_t last_generation = 0;
      for (size_t i = 0; i < stream.points.size(); ++i) {
        // Jittery but monotone timestamps, with runs of exact duplicates.
        if (i % 7 != 0) t += 0.01 * static_cast<double>(i % 3);
        engine.InsertTimed(stream.points[i], t);
        timed.emplace_back(t, stream.points[i]);
        ASSERT_GT(engine.Generation(), last_generation);
        last_generation = engine.Generation();
        if (i % 101 == 0 || i + 1 == stream.points.size()) {
          std::vector<Point2> window;
          for (const auto& [ts, p] : timed) {
            if (ts > engine.now() - kWindowSeconds) window.push_back(p);
          }
          const std::string context =
              stream.name + " K=" + std::to_string(buckets) + " i=" +
              std::to_string(i);
          // The alive buckets cover at least the in-window points, so
          // num_points (the alive sum) is an upper bound.
          ASSERT_GE(engine.num_points(), window.size()) << context;
          if (!engine.Samples().empty()) {
            ExpectSandwichCertifies(engine, window, context);
          }
          ASSERT_TRUE(engine.CheckConsistency().ok()) << context;
        }
      }
      EXPECT_GT(engine.buckets_dropped(), 0u) << stream.name;
    }
  }
}

TEST(WindowedHullTest, AdvanceTimeExpiresEverything) {
  EngineOptions o;
  o.hull.r = 16;
  o.window_seconds = 1.0;
  o.window_buckets = 4;
  WindowedHullEngine engine(o);
  const auto points = DiskGenerator(21).Take(100);
  for (size_t i = 0; i < points.size(); ++i) {
    engine.InsertTimed(points[i], static_cast<double>(i) * 0.01);
  }
  EXPECT_EQ(engine.num_points(), 100u);
  const uint64_t before = engine.Generation();

  engine.AdvanceTime(1000.0);
  EXPECT_EQ(engine.num_points(), 0u);
  EXPECT_EQ(engine.alive_buckets(), 0u);
  EXPECT_GT(engine.Generation(), before);  // Expiry is an observable epoch.
  EXPECT_TRUE(engine.Samples().empty());
  EXPECT_TRUE(engine.Polygon().empty());
  EXPECT_TRUE(engine.OuterPolygon().empty());
  EXPECT_EQ(engine.ErrorBound(), 0.0);
  ASSERT_TRUE(engine.CheckConsistency().ok());

  // The engine keeps working after total expiry.
  engine.InsertTimed({1, 1}, 1000.5);
  EXPECT_EQ(engine.num_points(), 1u);
  ASSERT_TRUE(engine.CheckConsistency().ok());
}

TEST(WindowedHullTest, WindowLargerThanStreamMatchesInsertOnly) {
  // A window nothing ever leaves: the windowed engine must look exactly
  // like an insert-only engine — per-direction supports equal, the point
  // count the stream length, and generation == num_points (the wire
  // compat rule: such frames take the compact insert-only encoding).
  const auto points = DriftWalkGenerator(22).Take(500);
  WindowedHullEngine windowed(WindowedOpts(100000, 8));
  auto plain = MakeEngine(EngineKind::kAdaptive, WindowedOpts(100000, 8));
  for (const Point2& p : points) {
    windowed.Insert(p);
    plain->Insert(p);
  }
  EXPECT_EQ(windowed.num_points(), 500u);
  EXPECT_EQ(windowed.Generation(), 500u);
  EXPECT_EQ(windowed.buckets_dropped(), 0u);
  // The bucket sub-engine saw the identical stream, so the merged inner
  // support per base direction equals the insert-only engine's (sample
  // sets may differ — the adaptive engine keeps refined directions too —
  // but their per-direction maxima cannot).
  const ConvexPolygon windowed_inner = windowed.Polygon();
  const ConvexPolygon plain_inner = plain->Polygon();
  ASSERT_FALSE(windowed_inner.empty());
  for (uint32_t j = 0; j < windowed.r(); ++j) {
    const Point2 u = Direction::Uniform(j, windowed.r()).ToVector();
    EXPECT_EQ(windowed_inner.Support(u), plain_inner.Support(u))
        << "direction " << j;
  }
}

TEST(WindowedHullTest, DuplicateTimestampsStayInOneBucket) {
  EngineOptions o;
  o.hull.r = 16;
  o.window_seconds = 1.0;
  o.window_buckets = 4;
  WindowedHullEngine engine(o);
  const auto points = DiskGenerator(23).Take(300);
  for (const Point2& p : points) engine.InsertTimed(p, 5.0);
  // Same timestamp never crosses a bucket span boundary.
  EXPECT_EQ(engine.alive_buckets(), 1u);
  EXPECT_EQ(engine.num_points(), 300u);
  ASSERT_TRUE(engine.CheckConsistency().ok());

  // A single-timestamp bucket has no straddling phase: one time step takes
  // it from fully-in-window to dropped, charging exactly one epoch.
  const uint64_t before = engine.Generation();
  engine.AdvanceTime(6.5);
  EXPECT_EQ(engine.num_points(), 0u);
  EXPECT_EQ(engine.Generation(), before + 1);
}

TEST(WindowedHullTest, BatchMatchesIncrementalBitForBit) {
  const auto points = DriftWalkGenerator(24).Take(900);
  for (uint64_t window : {64u, 256u}) {
    for (size_t batch : {size_t{1}, size_t{7}, size_t{64}, size_t{900}}) {
      WindowedHullEngine incremental(WindowedOpts(window, 4));
      WindowedHullEngine batched(WindowedOpts(window, 4));
      for (const Point2& p : points) incremental.Insert(p);
      for (size_t off = 0; off < points.size(); off += batch) {
        const size_t len = std::min(batch, points.size() - off);
        batched.InsertBatch(std::span<const Point2>(&points[off], len));
      }
      const std::string context =
          "W=" + std::to_string(window) + " batch=" + std::to_string(batch);
      ASSERT_EQ(batched.Generation(), incremental.Generation()) << context;
      ASSERT_EQ(batched.num_points(), incremental.num_points()) << context;
      ASSERT_EQ(batched.alive_buckets(), incremental.alive_buckets())
          << context;
      ASSERT_EQ(batched.buckets_dropped(), incremental.buckets_dropped())
          << context;
      const auto a = batched.Samples();
      const auto b = incremental.Samples();
      ASSERT_EQ(a.size(), b.size()) << context;
      for (size_t j = 0; j < a.size(); ++j) {
        EXPECT_EQ(a[j].point, b[j].point) << context << " direction " << j;
      }
      const auto sa = batched.SampleSlacks();
      const auto sb = incremental.SampleSlacks();
      ASSERT_EQ(sa, sb) << context;
      EXPECT_EQ(batched.ErrorBound(), incremental.ErrorBound()) << context;
    }
  }
}

TEST(WindowedHullTest, V2RoundTripCarriesNonLengthGeneration) {
  WindowedHullEngine engine(WindowedOpts(64, 4));
  const auto points = DriftWalkGenerator(25).Take(200);
  for (const Point2& p : points) engine.Insert(p);
  ASSERT_GT(engine.Generation(), engine.num_points());

  const std::string bytes = EncodeSummaryView(engine);
  DecodedSummaryView view;
  ASSERT_TRUE(DecodeSummaryView(bytes, &view).ok());
  EXPECT_EQ(view.num_points, engine.num_points());
  EXPECT_EQ(view.generation, engine.Generation());
  EXPECT_EQ(view.kind, EngineKind::kWindowed);
  // Canonical re-encode: byte identity through a decode/encode cycle.
  EXPECT_EQ(EncodeSummaryView(view), bytes);

  // Restoring the view continues the mutation epoch, not the point count.
  std::unique_ptr<HullEngine> restored;
  EngineOptions restore_options = WindowedOpts(64, 4);
  restore_options.window_inner_kind = EngineKind::kAdaptive;
  ASSERT_TRUE(MakeEngineFromView(view, restore_options, &restored).ok());
  EXPECT_EQ(restored->Generation(), view.generation);
}

TEST(WindowedHullTest, V3DeltaChainFeedsRemoteStreamGroup) {
  // The acceptance path end to end: a windowed producer whose generation
  // has diverged from its point count drives a DeltaSender, the frames
  // feed a remote StreamGroup stream, and the held view tracks the
  // producer's epoch while its sandwich keeps certifying the true last-W
  // window.
  const uint64_t kWindow = 128;
  WindowedHullEngine engine(WindowedOpts(kWindow, 4));
  DeltaSender sender(&engine);
  StreamGroup group{EngineOptions{}};
  ASSERT_TRUE(group.AddRemoteStream("w").ok());

  const auto points = DriftWalkGenerator(26).Take(600);
  uint64_t deltas_applied = 0;
  for (size_t off = 0; off < points.size(); off += 50) {
    const size_t len = std::min<size_t>(50, points.size() - off);
    engine.InsertBatch(std::span<const Point2>(&points[off], len));
    DeltaSender::Frame frame;
    ASSERT_TRUE(sender.NextFrame(&frame).ok());
    EXPECT_EQ(frame.generation, engine.Generation());
    ASSERT_TRUE(group.UpdateRemoteStream("w", frame.bytes).ok())
        << "offset " << off;
    sender.OnAck(frame.generation);
    if (frame.is_delta) ++deltas_applied;
  }
  EXPECT_GT(deltas_applied, 0u);  // The chain ran on deltas, not resyncs.
  ASSERT_GT(engine.Generation(), engine.num_points());

  RemoteStreamStats stats;
  ASSERT_TRUE(group.RemoteStats("w", &stats).ok());
  EXPECT_EQ(stats.held_generation, engine.Generation());
  EXPECT_EQ(stats.resyncs_needed, 0u);

  DecodedSummaryView view;
  ASSERT_TRUE(group.RemoteView("w", &view).ok());
  EXPECT_EQ(view.generation, engine.Generation());
  EXPECT_EQ(view.num_points, engine.num_points());
  // The remote sandwich certifies the true last-W window.
  const std::span<const Point2> window(&points[points.size() - kWindow],
                                       kWindow);
  const ConvexPolygon inner = view.Inner();
  const ConvexPolygon outer = view.Outer();
  ASSERT_FALSE(inner.empty());
  ASSERT_FALSE(outer.empty());
  for (uint32_t j = 0; j < view.r; ++j) {
    const Point2 u = Direction::Uniform(j, view.r).ToVector();
    double brute = Dot(window[0], u);
    for (const Point2& p : window) brute = std::max(brute, Dot(p, u));
    const double tolerance = 1e-9 * std::max(1.0, std::fabs(brute));
    EXPECT_LE(inner.Support(u), brute + tolerance) << "direction " << j;
    EXPECT_GE(outer.Support(u), brute - tolerance) << "direction " << j;
  }
}

TEST(WindowedHullTest, ReplayedAndStaleDeltasAreRejected) {
  WindowedHullEngine engine(WindowedOpts(64, 4));
  const auto points = DriftWalkGenerator(27).Take(400);
  engine.InsertBatch(std::span<const Point2>(points.data(), 200));

  DecodedSummaryView original;
  ASSERT_TRUE(DecodeSummaryView(engine.EncodeView(), &original).ok());

  engine.InsertBatch(std::span<const Point2>(points.data() + 200, 100));
  std::string delta1;
  ASSERT_TRUE(engine.EncodeSummaryDelta(original.generation, &delta1).ok());
  DecodedSummaryView view = original;
  ASSERT_TRUE(ApplySummaryDelta(delta1, &view, nullptr).ok());
  EXPECT_EQ(view.generation, engine.Generation());
  EXPECT_EQ(view.num_points, engine.num_points());

  // Replay: the delta's base generation is now behind the view.
  DecodedSummaryView advanced = view;
  Status replay = ApplySummaryDelta(delta1, &advanced, nullptr);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.code(), StatusCode::kFailedPrecondition);

  // Stale sink: a later delta applied to a view that missed delta1.
  engine.InsertBatch(std::span<const Point2>(points.data() + 300, 100));
  std::string delta2;
  ASSERT_TRUE(engine.EncodeSummaryDelta(view.generation, &delta2).ok());
  DecodedSummaryView behind = original;
  Status stale = ApplySummaryDelta(delta2, &behind, nullptr);
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kFailedPrecondition);
}

TEST(WindowedHullTest, OptionsValidation) {
  EngineOptions o;
  o.hull.r = 16;
  EXPECT_TRUE(o.Validate(EngineKind::kWindowed).ok());
  o.window_inner_kind = EngineKind::kWindowed;  // No nesting.
  EXPECT_FALSE(o.Validate(EngineKind::kWindowed).ok());
  o.window_inner_kind = EngineKind::kAdaptive;
  o.window_seconds = -1.0;
  EXPECT_FALSE(o.Validate(EngineKind::kWindowed).ok());
  o.window_seconds = 0;
  o.window_buckets = (1u << 20) + 1;
  EXPECT_FALSE(o.Validate(EngineKind::kWindowed).ok());
}

TEST(WindowedHullTest, StatsAggregateAcrossBuckets) {
  WindowedHullEngine engine(WindowedOpts(64, 4));
  const auto points = DiskGenerator(28).Take(500);
  engine.InsertBatch(points);
  // Dropped buckets keep contributing: the windowed stats are cumulative
  // over the whole stream, like every other engine's.
  EXPECT_EQ(engine.stats().points_processed, 500u);
  EXPECT_GT(engine.buckets_dropped(), 0u);
}

}  // namespace
}  // namespace streamhull
