#!/usr/bin/env python3
"""CI benchmark-regression gate.

Compares the current run's Google-Benchmark JSON files (BENCH_*.json)
against the cached last-main baseline and fails (exit 1) when:

  * throughput regresses by more than --threshold (default 25%):
    items_per_second when both runs report it, otherwise real_time
    (inverted: slower is worse), or
  * an allocs_per_point counter increases beyond a small absolute epsilon
    (allocation regressions are deterministic, so no noise allowance), or
  * a broad-phase precision counter (candidate_ratio, pairs_evaluated)
    increases by more than --threshold: the fleet workloads are seeded, so
    these move only when the index starts admitting pairs it used to prune
    — a precision regression wall time can hide in noise, or
  * a fixed-cost rate counter (disarmed_checks_per_s) *decreases* by more
    than --threshold: the disarmed failpoint check must stay one relaxed
    atomic load, and a slow path sneaking in (a lock, a registry lookup)
    shows up here long before end-to-end numbers move.

Byte-size counters (bytes/update, full_bytes/delta_bytes, ...) are
deterministic protocol properties pinned by tests, so they are reported
here but not gated. Prefilter telemetry (reject%, simd_reject%,
scalar_reject%, cache_refreshes) is likewise printed for trend-watching
but never gated: rejection *totals* are deterministic, but the tier split
depends on which ISA the runner dispatches to.

A missing baseline (first run on a branch, cache evicted) is not an
error: the gate prints a notice and passes, and the main-branch job saves
the fresh baseline for the next run.

Usage:
  bench_compare.py --baseline DIR --current DIR [--threshold 0.25]
"""

import argparse
import json
import pathlib
import sys

ALLOC_EPSILON = 0.01  # Absolute allowance on allocs/point counters.

# Informational counters printed when they move, never gated.
TREND_COUNTERS = ("reject%", "simd_reject%", "scalar_reject%",
                  "cache_refreshes")

# Broad-phase precision counters: gated on *increase* only (one-sided —
# pruning getting better is progress, not noise). The relative allowance
# absorbs the per-run iteration-count wobble in averaged counters; the
# small absolute epsilon keeps near-zero ratios from tripping on rounding.
PRECISION_COUNTERS = ("candidate_ratio", "pairs_evaluated")
PRECISION_EPSILON = 1e-12

# Fixed-cost rate counters: gated on *decrease* only (one-sided — the
# check getting faster is progress). These guard must-stay-cheap code on
# hot paths, e.g. the disarmed fault-injection probe.
COST_COUNTERS = ("disarmed_checks_per_s",)


def load_benchmarks(path):
    """Returns {benchmark name: entry} for one benchmark JSON file."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for entry in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if entry.get("run_type") == "aggregate":
            continue
        out[entry["name"]] = entry
    return out


def compare_file(name, baseline, current, threshold):
    """Compares one JSON file pair; returns a list of failure strings."""
    failures = []
    for bench, cur in sorted(current.items()):
        base = baseline.get(bench)
        if base is None:
            print(f"  {bench}: new benchmark (no baseline)")
            continue

        if "items_per_second" in cur and "items_per_second" in base:
            b, c = base["items_per_second"], cur["items_per_second"]
            ratio = c / b if b > 0 else 1.0
            verdict = "OK"
            if ratio < 1.0 - threshold:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}:{bench}: items/s fell {100 * (1 - ratio):.1f}% "
                    f"({b:.3g} -> {c:.3g})")
            print(f"  {bench}: items/s {b:.3g} -> {c:.3g} "
                  f"({100 * (ratio - 1):+.1f}%) {verdict}")
        else:
            b, c = base["real_time"], cur["real_time"]
            ratio = c / b if b > 0 else 1.0
            verdict = "OK"
            if ratio > 1.0 + threshold:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}:{bench}: real_time rose {100 * (ratio - 1):.1f}% "
                    f"({b:.3g} -> {c:.3g} {cur.get('time_unit', 'ns')})")
            print(f"  {bench}: time {b:.3g} -> {c:.3g} "
                  f"({100 * (ratio - 1):+.1f}%) {verdict}")

        for counter, cur_val in cur.items():
            if "allocs_per_point" not in counter:
                continue
            base_val = base.get(counter)
            if base_val is None:
                continue
            if cur_val > base_val + ALLOC_EPSILON:
                failures.append(
                    f"{name}:{bench}: {counter} increased "
                    f"{base_val:.4f} -> {cur_val:.4f}")
                print(f"  {bench}: {counter} {base_val:.4f} -> "
                      f"{cur_val:.4f} REGRESSION")

        for counter in PRECISION_COUNTERS:
            cur_val = cur.get(counter)
            base_val = base.get(counter)
            if cur_val is None or base_val is None:
                continue
            if cur_val > base_val * (1.0 + threshold) + PRECISION_EPSILON:
                failures.append(
                    f"{name}:{bench}: {counter} increased "
                    f"{base_val:.4g} -> {cur_val:.4g}")
                print(f"  {bench}: {counter} {base_val:.4g} -> "
                      f"{cur_val:.4g} REGRESSION")
            elif abs(cur_val - base_val) > PRECISION_EPSILON:
                print(f"  {bench}: {counter} {base_val:.4g} -> "
                      f"{cur_val:.4g} OK")

        for counter in COST_COUNTERS:
            cur_val = cur.get(counter)
            base_val = base.get(counter)
            if cur_val is None or base_val is None:
                continue
            if cur_val < base_val * (1.0 - threshold):
                failures.append(
                    f"{name}:{bench}: {counter} decreased "
                    f"{base_val:.4g} -> {cur_val:.4g}")
                print(f"  {bench}: {counter} {base_val:.4g} -> "
                      f"{cur_val:.4g} REGRESSION")
            else:
                print(f"  {bench}: {counter} {base_val:.4g} -> "
                      f"{cur_val:.4g} OK")

        for counter in TREND_COUNTERS:
            cur_val = cur.get(counter)
            base_val = base.get(counter)
            if cur_val is None or base_val is None:
                continue
            if abs(cur_val - base_val) > 1e-9:
                print(f"  {bench}: {counter} {base_val:.2f} -> "
                      f"{cur_val:.2f} (informational)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, type=pathlib.Path)
    parser.add_argument("--current", required=True, type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=0.25)
    args = parser.parse_args()

    current_files = sorted(args.current.glob("BENCH_*.json"))
    if not current_files:
        print(f"error: no BENCH_*.json under {args.current}", file=sys.stderr)
        return 2

    if not args.baseline.is_dir():
        print(f"no baseline at {args.baseline}: first run, gate passes")
        return 0

    failures = []
    compared = 0
    for cur_path in current_files:
        base_path = args.baseline / cur_path.name
        if not base_path.exists():
            print(f"{cur_path.name}: no baseline file, skipping")
            continue
        print(f"{cur_path.name}:")
        failures += compare_file(cur_path.name, load_benchmarks(base_path),
                                 load_benchmarks(cur_path), args.threshold)
        compared += 1

    if compared == 0:
        print("no comparable baseline files: gate passes")
        return 0
    if failures:
        print(f"\n{len(failures)} benchmark regression(s) beyond "
              f"{100 * args.threshold:.0f}%:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {compared} benchmark file(s) within "
          f"{100 * args.threshold:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
